"""Inter-source and inter-extractor correlation estimation.

The paper proposes to improve fusion by modelling correlations among
Web sources *and* among extractors (Sec. 3.2, bullet 3), citing the
Bayesian copy-detection line of work (Dong et al., PVLDB'10).  This
module estimates pairwise dependence from the claims themselves and
turns it into per-source *independence weights* that the fusion methods
apply as vote discounts — a clique of copiers then counts roughly as
one independent source.

Dependence evidence follows the copy-detection intuition: agreeing on a
*popular* value is weak evidence (independent sources agree on truths),
while agreeing on a *rare/minority* value is strong evidence of copying
(two sources rarely invent the same mistake independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.fusion.base import ClaimSet, Item


@dataclass(slots=True)
class CorrelationEstimate:
    """Pairwise dependence scores plus derived per-source weights."""

    dependence: dict[tuple[str, str], float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    def pair(self, left: str, right: str) -> float:
        key = (min(left, right), max(left, right))
        return self.dependence.get(key, 0.0)


class CorrelationEstimator:
    """Estimate source (or extractor) correlations from claims.

    Parameters
    ----------
    by:
        ``"source"`` (default) or ``"extractor"`` — which provenance
        dimension to correlate.
    min_common_items:
        Pairs sharing fewer items are assumed independent.
    dependence_threshold:
        Pairs at or above this dependence count toward weight
        discounts.
    """

    def __init__(
        self,
        *,
        by: str = "source",
        min_common_items: int = 3,
        dependence_threshold: float = 0.25,
    ) -> None:
        if by not in ("source", "extractor"):
            raise ValueError("by must be 'source' or 'extractor'")
        self.by = by
        self.min_common_items = min_common_items
        self.dependence_threshold = dependence_threshold

    # ------------------------------------------------------------------
    def estimate(self, claims: ClaimSet) -> CorrelationEstimate:
        """Compute pairwise dependence and independence weights."""
        votes = self._votes_by_party(claims)
        claimants = self._claimants_by_item_value(claims)

        estimate = CorrelationEstimate()
        parties = sorted(votes)
        for left, right in combinations(parties, 2):
            common = set(votes[left]) & set(votes[right])
            if len(common) < self.min_common_items:
                continue
            score = self._pair_dependence(
                left, right, votes[left], votes[right], common, claimants
            )
            estimate.dependence[(left, right)] = score

        # Independence weight: 1 / (1 + Σ strong dependences), so a
        # clique of k mutual copiers each weighs ~1/k.
        for party in parties:
            strong = sum(
                score
                for (left, right), score in estimate.dependence.items()
                if score >= self.dependence_threshold
                and party in (left, right)
            )
            estimate.weights[party] = 1.0 / (1.0 + strong)
        return estimate

    # ------------------------------------------------------------------
    def _party(self, claim) -> str:
        return claim.source_id if self.by == "source" else claim.extractor_id

    def _votes_by_party(
        self, claims: ClaimSet
    ) -> dict[str, dict[Item, set[str]]]:
        votes: dict[str, dict[Item, set[str]]] = {}
        for claim in claims:
            votes.setdefault(self._party(claim), {}).setdefault(
                claim.item, set()
            ).add(claim.value)
        return votes

    def _claimants_by_item_value(
        self, claims: ClaimSet
    ) -> dict[Item, dict[str, set[str]]]:
        claimants: dict[Item, dict[str, set[str]]] = {}
        for claim in claims:
            claimants.setdefault(claim.item, {}).setdefault(
                claim.value, set()
            ).add(self._party(claim))
        return claimants

    def _pair_dependence(
        self,
        left: str,
        right: str,
        left_votes: dict[Item, set[str]],
        right_votes: dict[Item, set[str]],
        common: set[Item],
        claimants: dict[Item, dict[str, set[str]]],
    ) -> float:
        """Dependence in [0, 1]: rarity-weighted agreement rate.

        Rarity is measured among *other* parties — two sources agreeing
        on a value everyone else also asserts (a popular truth) is no
        copying evidence, while agreeing on a value nobody else claims
        almost certainly is.  The score is the average rarity of the
        pair's agreements over all values either asserted, so both
        popular-only agreement and frequent disagreement drive the
        dependence toward zero.
        """
        agreement_rarity = 0.0
        union_size = 0
        for item in common:
            by_value = claimants[item]
            other_parties = {
                party
                for parties in by_value.values()
                for party in parties
                if party not in (left, right)
            }
            shared = left_votes[item] & right_votes[item]
            union = left_votes[item] | right_votes[item]
            union_size += len(union)
            for value in shared:
                if len(other_parties) < 2:
                    # No independent witnesses: agreement could equally
                    # be two honest sources stating the truth, so it is
                    # only weakly informative.
                    agreement_rarity += 0.2
                    continue
                others_claiming = len(by_value.get(value, set()) - {left, right})
                popularity_among_others = others_claiming / len(other_parties)
                agreement_rarity += 1.0 - popularity_among_others
        return agreement_rarity / union_size if union_size else 0.0
