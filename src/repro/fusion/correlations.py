"""Inter-source and inter-extractor correlation estimation.

The paper proposes to improve fusion by modelling correlations among
Web sources *and* among extractors (Sec. 3.2, bullet 3), citing the
Bayesian copy-detection line of work (Dong et al., PVLDB'10).  This
module estimates pairwise dependence from the claims themselves and
turns it into per-source *independence weights* that the fusion methods
apply as vote discounts — a clique of copiers then counts roughly as
one independent source.

Dependence evidence follows the copy-detection intuition: agreeing on a
*popular* value is weak evidence (independent sources agree on truths),
while agreeing on a *rare/minority* value is strong evidence of copying
(two sources rarely invent the same mistake independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.fusion.base import ClaimSet, Item

#: Rarity credited to an agreement no independent witness can vouch
#: for.  With zero witnesses every agreement earns exactly this much,
#: so a *pure two-source world* yields a constant dependence of
#: ``0.2 × |shared| / |union|`` regardless of what the values are —
#: intended: with no outside evidence, agreement content cannot
#: distinguish copying from two honest sources, and the constant sits
#: below the default ``dependence_threshold`` (0.25) so such pairs are
#: never discounted.  Pinned in tests/unit/test_fusion_correlations.py.
UNWITNESSED_RARITY = 0.2


@dataclass(slots=True)
class CorrelationEstimate:
    """Pairwise dependence scores plus derived per-source weights."""

    dependence: dict[tuple[str, str], float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    def pair(self, left: str, right: str) -> float:
        key = (min(left, right), max(left, right))
        return self.dependence.get(key, 0.0)


class CorrelationEstimator:
    """Estimate source (or extractor) correlations from claims.

    Parameters
    ----------
    by:
        ``"source"`` (default) or ``"extractor"`` — which provenance
        dimension to correlate.
    min_common_items:
        Pairs sharing fewer items are assumed independent.
    dependence_threshold:
        Pairs at or above this dependence count toward weight
        discounts.
    """

    def __init__(
        self,
        *,
        by: str = "source",
        min_common_items: int = 3,
        dependence_threshold: float = 0.25,
    ) -> None:
        if by not in ("source", "extractor"):
            raise ValueError("by must be 'source' or 'extractor'")
        self.by = by
        self.min_common_items = min_common_items
        self.dependence_threshold = dependence_threshold

    # ------------------------------------------------------------------
    def estimate(self, claims: ClaimSet) -> CorrelationEstimate:
        """Compute pairwise dependence and independence weights."""
        votes = self._votes_by_party(claims)
        claimants = self._claimants_by_item_value(claims)

        estimate = CorrelationEstimate()
        parties = sorted(votes)
        for left, right in combinations(parties, 2):
            common = set(votes[left]) & set(votes[right])
            if len(common) < self.min_common_items:
                continue
            score = self._pair_dependence(
                left, right, votes[left], votes[right], common, claimants
            )
            estimate.dependence[(left, right)] = score

        # Independence weight: 1 / (1 + Σ strong dependences), so a
        # clique of k mutual copiers each weighs ~1/k.
        for party in parties:
            strong = sum(
                score
                for (left, right), score in estimate.dependence.items()
                if score >= self.dependence_threshold
                and party in (left, right)
            )
            estimate.weights[party] = 1.0 / (1.0 + strong)
        return estimate

    # ------------------------------------------------------------------
    def _party(self, claim) -> str:
        return claim.source_id if self.by == "source" else claim.extractor_id

    def _votes_by_party(
        self, claims: ClaimSet
    ) -> dict[str, dict[Item, set[str]]]:
        votes: dict[str, dict[Item, set[str]]] = {}
        for claim in claims:
            votes.setdefault(self._party(claim), {}).setdefault(
                claim.item, set()
            ).add(claim.value)
        return votes

    def _claimants_by_item_value(
        self, claims: ClaimSet
    ) -> dict[Item, dict[str, set[str]]]:
        claimants: dict[Item, dict[str, set[str]]] = {}
        for claim in claims:
            claimants.setdefault(claim.item, {}).setdefault(
                claim.value, set()
            ).add(self._party(claim))
        return claimants

    def _pair_dependence(
        self,
        left: str,
        right: str,
        left_votes: dict[Item, set[str]],
        right_votes: dict[Item, set[str]],
        common: set[Item],
        claimants: dict[Item, dict[str, set[str]]],
    ) -> float:
        """Dependence in [0, 1]: rarity-weighted agreement rate.

        Rarity is measured among *other* parties — two sources agreeing
        on a value everyone else also asserts (a popular truth) is no
        copying evidence, while agreeing on a value nobody else claims
        almost certainly is.  With few independent witnesses the
        observed popularity is unreliable, so it is blended toward the
        uninformative :data:`UNWITNESSED_RARITY` prior in proportion to
        the witness count (full trust from two witnesses up).  The old
        hard cliff — a flat 0.2 for *any* item with fewer than two
        witnesses — threw away the one witness an item did have: a
        single independent dissenter (rarity 1.0 under the formula)
        scored the same 0.2 as no evidence at all, so copier cliques in
        sparse worlds stayed below the discount threshold.

        The sum is normalized by the size of the pair's value *union*
        per item (Jaccard style), so both popular-only agreement and
        frequent disagreement drive the dependence toward zero; a pair
        that always disagrees scores near 0 even over many items.
        """
        agreement_rarity = 0.0
        union_size = 0
        for item in common:
            by_value = claimants[item]
            other_parties = {
                party
                for parties in by_value.values()
                for party in parties
                if party not in (left, right)
            }
            witnesses = len(other_parties)
            # Confidence in the observed popularity: 0 with no
            # witnesses, 0.5 with one, 1.0 from two up.  ≥2 witnesses
            # reproduces the pre-fix arithmetic exactly.
            weight = min(1.0, witnesses / 2.0)
            shared = left_votes[item] & right_votes[item]
            union = left_votes[item] | right_votes[item]
            union_size += len(union)
            for value in shared:
                if witnesses:
                    others_claiming = len(
                        by_value.get(value, set()) - {left, right}
                    )
                    popularity_among_others = others_claiming / witnesses
                else:
                    popularity_among_others = 0.0
                agreement_rarity += (
                    (1.0 - weight) * UNWITNESSED_RARITY
                    + weight * (1.0 - popularity_among_others)
                )
        return agreement_rarity / union_size if union_size else 0.0
