"""VOTE: the majority-voting baseline (Dong et al. [13]).

Each item's truth is the value asserted by the most distinct sources;
ties break deterministically on the value key.  VOTE assumes a single
truth per item and knows nothing about source quality — it is the
baseline every smarter method must beat.
"""

from __future__ import annotations

from repro.fusion.base import ClaimSet, FusionMethod, FusionResult


class Vote(FusionMethod):
    """Single-truth majority voting.

    Parameters
    ----------
    weighted:
        When ``True``, votes are weighted by claim confidence instead
        of counting each source once.
    """

    name = "vote"

    def __init__(self, *, weighted: bool = False) -> None:
        self.weighted = weighted

    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        result = FusionResult(self.name)
        for item in claims.items():
            scores: dict[str, float] = {}
            for value, value_claims in claims.values_of(item).items():
                if self.weighted:
                    scores[value] = sum(
                        claim.confidence for claim in value_claims
                    )
                else:
                    scores[value] = float(
                        len({claim.source_id for claim in value_claims})
                    )
            winner = min(
                scores, key=lambda value: (-scores[value], value)
            )
            result.truths[item] = {winner}
            total = sum(scores.values())
            for value, score in scores.items():
                result.belief[(item, value)] = (
                    score / total if total else 0.0
                )
        result.iterations = 1
        return result
