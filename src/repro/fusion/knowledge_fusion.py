"""The paper's combined knowledge-fusion method.

Section 3.2 commits to four improvements over plain data fusion, all of
which this class composes on top of the multi-truth Bayesian core:

1. functional *and* non-functional attributes — multi-truth decisions
   by default, with functional items constrained to a single truth
   (single chain, for hierarchical values);
2. hierarchical value spaces — the :class:`HierarchicalFusion` wrapper;
3. inter-source and inter-extractor correlations — copy-detection
   weights discount correlated claimants;
4. extraction confidence scores — claims act as soft evidence.
"""

from __future__ import annotations

from typing import Callable

from repro.faults import FaultPlan
from repro.fusion.base import Claim, ClaimSet, FusionMethod, FusionResult
from repro.mapreduce.engine import RetryPolicy
from repro.fusion.correlations import CorrelationEstimator
from repro.fusion.hierarchy import CasefoldHierarchy, HierarchicalFusion
from repro.fusion.multitruth import MultiTruth
from repro.rdf.hierarchy import ValueHierarchy

FunctionalOracle = Callable[[str], bool]


class KnowledgeFusion(FusionMethod):
    """Multi-truth fusion with hierarchy, correlations and confidence.

    Parameters
    ----------
    hierarchy:
        Optional value hierarchy for hierarchical attributes.
    functional_of:
        Optional oracle: predicate name → is the attribute functional?
        Functional items keep only their best truth (or best chain).
    use_source_correlations / use_extractor_correlations:
        Toggle the copy-detection discounts (ablation switches).
    use_confidence:
        Toggle soft-evidence claims (ablation switch).
    parallelism / fusion_executor:
        With ``parallelism >= 2`` the core fuse runs sharded over the
        connected components of the claim graph
        (:mod:`repro.fusion.sharding`) on ``parallelism`` workers of
        the given mapreduce executor (``"serial"`` or ``"process"``).
        Correlation estimation stays global (copy detection must see
        all claims); only the fixed-point fuse shards.  The last run's
        :class:`~repro.fusion.sharding.ShardStats` is kept in
        ``last_shard_stats`` (None on serial runs).
    tolerance:
        Optional convergence tolerance forwarded to the multi-truth
        core; ``None`` keeps the core's own default.  ``tolerance=0``
        pins the iteration count, which is the regime in which the
        incremental engine's byte-identity contract holds.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` handed down to the
        sharded fuse's MapReduce job (``mapreduce_*`` counters) and to
        the incremental engine (``incremental_*`` metrics); the
        pipeline passes its per-run registry here.

    Incremental updates
    -------------------
    ``begin_incremental(store)`` primes an
    :class:`~repro.incremental.engine.IncrementalFusion` over a triple
    store and returns it; subsequent ``apply_delta(delta)`` calls
    journal a :class:`~repro.incremental.delta.ClaimDelta` into the
    store and re-fuse only the dirty connected components, reusing
    cached verdicts everywhere else.
    """

    name = "knowledge-fusion"

    def __init__(
        self,
        *,
        hierarchy: ValueHierarchy | None = None,
        functional_of: FunctionalOracle | None = None,
        use_source_correlations: bool = True,
        use_extractor_correlations: bool = True,
        use_confidence: bool = True,
        prior: float = 0.3,
        threshold: float = 0.5,
        max_iterations: int = 20,
        tolerance: float | None = None,
        parallelism: int = 1,
        fusion_executor: str = "serial",
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        metrics=None,
    ) -> None:
        self.hierarchy = hierarchy
        self.functional_of = functional_of
        self.use_source_correlations = use_source_correlations
        self.use_extractor_correlations = use_extractor_correlations
        self.use_confidence = use_confidence
        self.prior = prior
        self.threshold = threshold
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.parallelism = parallelism
        self.fusion_executor = fusion_executor
        self.retry = retry
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.last_shard_stats = None
        self.incremental = None
        self._casefold_hierarchy = (
            CasefoldHierarchy(hierarchy) if hierarchy is not None else None
        )

    # ------------------------------------------------------------------
    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        working = claims
        if self.use_extractor_correlations:
            working = self._apply_extractor_weights(
                working, self._extractor_weights(working)
            )

        source_weights: dict[str, float] | None = None
        if self.use_source_correlations:
            source_weights = self._source_weights(working)

        base = self._base_method(source_weights)
        if self.parallelism > 1:
            from repro.fusion.sharding import fuse_sharded

            result, self.last_shard_stats = fuse_sharded(
                base,
                working,
                workers=self.parallelism,
                executor=self.fusion_executor,
                retry=self.retry,
                fault_plan=self.fault_plan,
                metrics=self.metrics,
            )
        else:
            self.last_shard_stats = None
            result = base.fuse(working)
        result.method = self.name
        if self.functional_of is not None:
            self._constrain_functional(working, result)
        return result

    # ------------------------------------------------------------------
    # Incremental updates.

    def begin_incremental(self, store, *, functional_refresh=None):
        """Prime an incremental engine over ``store`` and return it.

        ``store`` is a :class:`~repro.rdf.store.TripleStore` holding
        the current claim corpus; the engine takes ownership of it
        (deltas are journalled against internal copies and committed
        atomically).  ``functional_refresh``, when given, is a
        callable ``ClaimSet -> FunctionalOracle`` re-derived after
        every delta (the ``functionality_source="estimated"`` mode of
        the pipeline).  The engine is also kept on ``self.incremental``
        so :meth:`apply_delta` can be called on the fusion object
        directly.
        """
        from repro.incremental.engine import IncrementalFusion

        self.incremental = IncrementalFusion(
            self,
            store,
            functional_refresh=functional_refresh,
            metrics=self.metrics,
            fault_plan=self.fault_plan,
        )
        self.incremental.prime()
        return self.incremental

    def apply_delta(self, delta):
        """Apply a :class:`ClaimDelta` to the primed incremental state.

        Returns the engine's
        :class:`~repro.incremental.engine.DeltaOutcome`; raises
        :class:`~repro.errors.DeltaError` when no incremental engine
        was primed via :meth:`begin_incremental`.
        """
        if self.incremental is None:
            from repro.errors import DeltaError

            raise DeltaError(
                "apply_delta called before begin_incremental(store)"
            )
        return self.incremental.apply_delta(delta)

    # ------------------------------------------------------------------
    # Shared building blocks (also driven by the incremental engine,
    # which must replay exactly this preparation to keep its
    # byte-identity contract).

    def _extractor_weights(self, claims: ClaimSet) -> dict[str, float]:
        """Global extractor-correlation independence weights."""
        estimator = CorrelationEstimator(by="extractor")
        return estimator.estimate(claims).weights

    def _source_weights(self, claims: ClaimSet) -> dict[str, float]:
        """Source-correlation independence weights over ``claims``.

        Sources in different connected components of the claim graph
        share no items, so no dependence pair ever crosses a component
        boundary: estimating per component and merging yields exactly
        the global estimate (the incremental engine relies on this).
        """
        estimator = CorrelationEstimator(by="source")
        return estimator.estimate(claims).weights

    def _base_method(
        self, source_weights: dict[str, float] | None
    ) -> FusionMethod:
        """The multi-truth core (hierarchy-wrapped when configured)."""
        kwargs = {}
        if self.tolerance is not None:
            kwargs["tolerance"] = self.tolerance
        base: FusionMethod = MultiTruth(
            prior=self.prior,
            threshold=self.threshold,
            source_weights=source_weights,
            use_confidence=self.use_confidence
            or self.use_extractor_correlations,
            max_iterations=self.max_iterations,
            **kwargs,
        )
        if self.hierarchy is not None:
            base = HierarchicalFusion(base, self.hierarchy)
        return base

    def _apply_extractor_weights(
        self, claims: ClaimSet, weights: dict[str, float]
    ) -> ClaimSet:
        """Fold extractor-correlation discounts into claim confidences."""
        reweighted = ClaimSet()
        for claim in claims:
            weight = weights.get(claim.extractor_id, 1.0)
            confidence = claim.confidence if self.use_confidence else 1.0
            reweighted.add(
                Claim(
                    item=claim.item,
                    value=claim.value,
                    lexical=claim.lexical,
                    source_id=claim.source_id,
                    extractor_id=claim.extractor_id,
                    confidence=max(0.0, min(1.0, confidence * weight)),
                )
            )
        return reweighted

    def _constrain_functional(
        self, claims: ClaimSet, result: FusionResult
    ) -> None:
        """Keep a single truth (or chain) for functional attributes."""
        for item, truths in result.truths.items():
            if len(truths) <= 1:
                continue
            predicate = item[1]
            if not self.functional_of(predicate):
                continue
            best = min(
                truths,
                key=lambda value: (-result.belief_of(item, value), value),
            )
            if self._casefold_hierarchy is not None:
                chain = set(self._casefold_hierarchy.chain(best))
                kept = {value for value in truths if value in chain}
                # Prefer the deepest decided value's chain.
                deepest = max(
                    kept or {best},
                    key=lambda value: self._casefold_hierarchy.depth(value),
                )
                result.truths[item] = set(
                    self._casefold_hierarchy.chain(deepest)
                ) & (truths | {deepest})
            else:
                result.truths[item] = {best}
