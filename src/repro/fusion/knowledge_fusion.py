"""The paper's combined knowledge-fusion method.

Section 3.2 commits to four improvements over plain data fusion, all of
which this class composes on top of the multi-truth Bayesian core:

1. functional *and* non-functional attributes — multi-truth decisions
   by default, with functional items constrained to a single truth
   (single chain, for hierarchical values);
2. hierarchical value spaces — the :class:`HierarchicalFusion` wrapper;
3. inter-source and inter-extractor correlations — copy-detection
   weights discount correlated claimants;
4. extraction confidence scores — claims act as soft evidence.
"""

from __future__ import annotations

from typing import Callable

from repro.faults import FaultPlan
from repro.fusion.base import Claim, ClaimSet, FusionMethod, FusionResult
from repro.mapreduce.engine import RetryPolicy
from repro.fusion.correlations import CorrelationEstimator
from repro.fusion.hierarchy import CasefoldHierarchy, HierarchicalFusion
from repro.fusion.multitruth import MultiTruth
from repro.rdf.hierarchy import ValueHierarchy

FunctionalOracle = Callable[[str], bool]


class KnowledgeFusion(FusionMethod):
    """Multi-truth fusion with hierarchy, correlations and confidence.

    Parameters
    ----------
    hierarchy:
        Optional value hierarchy for hierarchical attributes.
    functional_of:
        Optional oracle: predicate name → is the attribute functional?
        Functional items keep only their best truth (or best chain).
    use_source_correlations / use_extractor_correlations:
        Toggle the copy-detection discounts (ablation switches).
    use_confidence:
        Toggle soft-evidence claims (ablation switch).
    parallelism / fusion_executor:
        With ``parallelism >= 2`` the core fuse runs sharded over the
        connected components of the claim graph
        (:mod:`repro.fusion.sharding`) on ``parallelism`` workers of
        the given mapreduce executor (``"serial"`` or ``"process"``).
        Correlation estimation stays global (copy detection must see
        all claims); only the fixed-point fuse shards.  The last run's
        :class:`~repro.fusion.sharding.ShardStats` is kept in
        ``last_shard_stats`` (None on serial runs).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` handed down to the
        sharded fuse's MapReduce job (``mapreduce_*`` counters); the
        pipeline passes its per-run registry here.
    """

    name = "knowledge-fusion"

    def __init__(
        self,
        *,
        hierarchy: ValueHierarchy | None = None,
        functional_of: FunctionalOracle | None = None,
        use_source_correlations: bool = True,
        use_extractor_correlations: bool = True,
        use_confidence: bool = True,
        prior: float = 0.3,
        threshold: float = 0.5,
        max_iterations: int = 20,
        parallelism: int = 1,
        fusion_executor: str = "serial",
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        metrics=None,
    ) -> None:
        self.hierarchy = hierarchy
        self.functional_of = functional_of
        self.use_source_correlations = use_source_correlations
        self.use_extractor_correlations = use_extractor_correlations
        self.use_confidence = use_confidence
        self.prior = prior
        self.threshold = threshold
        self.max_iterations = max_iterations
        self.parallelism = parallelism
        self.fusion_executor = fusion_executor
        self.retry = retry
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.last_shard_stats = None
        self._casefold_hierarchy = (
            CasefoldHierarchy(hierarchy) if hierarchy is not None else None
        )

    # ------------------------------------------------------------------
    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        working = claims
        if self.use_extractor_correlations:
            working = self._apply_extractor_weights(working)

        source_weights: dict[str, float] | None = None
        if self.use_source_correlations:
            estimator = CorrelationEstimator(by="source")
            source_weights = estimator.estimate(working).weights

        base: FusionMethod = MultiTruth(
            prior=self.prior,
            threshold=self.threshold,
            source_weights=source_weights,
            use_confidence=self.use_confidence
            or self.use_extractor_correlations,
            max_iterations=self.max_iterations,
        )
        if self.hierarchy is not None:
            base = HierarchicalFusion(base, self.hierarchy)
        if self.parallelism > 1:
            from repro.fusion.sharding import fuse_sharded

            result, self.last_shard_stats = fuse_sharded(
                base,
                working,
                workers=self.parallelism,
                executor=self.fusion_executor,
                retry=self.retry,
                fault_plan=self.fault_plan,
                metrics=self.metrics,
            )
        else:
            self.last_shard_stats = None
            result = base.fuse(working)
        result.method = self.name
        if self.functional_of is not None:
            self._constrain_functional(working, result)
        return result

    # ------------------------------------------------------------------
    def _apply_extractor_weights(self, claims: ClaimSet) -> ClaimSet:
        """Fold extractor-correlation discounts into claim confidences."""
        estimator = CorrelationEstimator(by="extractor")
        weights = estimator.estimate(claims).weights
        reweighted = ClaimSet()
        for claim in claims:
            weight = weights.get(claim.extractor_id, 1.0)
            confidence = claim.confidence if self.use_confidence else 1.0
            reweighted.add(
                Claim(
                    item=claim.item,
                    value=claim.value,
                    lexical=claim.lexical,
                    source_id=claim.source_id,
                    extractor_id=claim.extractor_id,
                    confidence=max(0.0, min(1.0, confidence * weight)),
                )
            )
        return reweighted

    def _constrain_functional(
        self, claims: ClaimSet, result: FusionResult
    ) -> None:
        """Keep a single truth (or chain) for functional attributes."""
        for item, truths in result.truths.items():
            if len(truths) <= 1:
                continue
            predicate = item[1]
            if not self.functional_of(predicate):
                continue
            best = min(
                truths,
                key=lambda value: (-result.belief_of(item, value), value),
            )
            if self._casefold_hierarchy is not None:
                chain = set(self._casefold_hierarchy.chain(best))
                kept = {value for value in truths if value in chain}
                # Prefer the deepest decided value's chain.
                deepest = max(
                    kept or {best},
                    key=lambda value: self._casefold_hierarchy.depth(value),
                )
                result.truths[item] = set(
                    self._casefold_hierarchy.chain(deepest)
                ) & (truths | {deepest})
            else:
                result.truths[item] = {best}
