"""Compiled claim matrices: flat-array fusion inner loops.

The iterative fusion methods spend every fixed-point round re-walking
Python dicts of :class:`~repro.fusion.base.Claim` objects — attribute
chasing, per-claim ``math.log`` calls, and per-round set construction
dominate their profiles long before the arithmetic does.  This module
"compiles" a :class:`ClaimSet` once into integer-indexed flat arrays
(interned item/value/source/extractor ids, ``array('d')`` confidence
vectors, CSR-style offset tables) shared by every method, so per-round
updates become tight loops over parallel arrays.

Exactness contract
------------------
The compiled loops replay the *exact float operation order* of the
dict-based implementations: items in ``claims.items()`` order, values
in ``values_of`` insertion order, claims in ``ClaimSet`` insertion
order, covering sources in the same set-iteration order the legacy
code observes in this process.  Per-source logarithms are hoisted out
of the claim loop only where the legacy code computes the same value
repeatedly (``log`` of identical inputs is deterministic), never where
it would reorder an accumulation.  Decided truths are therefore
byte-identical to the legacy paths at fixed iteration counts, and
belief/quality scores are bit-equal (asserted within 1e-9 by tests).

Every compiled method reports ``converged_at`` — the round whose
parameter delta dropped under ``tolerance`` — in the
:class:`FusionResult`; ``tolerance=0`` disables the early exit.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from math import exp, log

from repro.fusion.base import ClaimSet, FusionResult, Item

__all__ = [
    "CompiledClaims",
    "compile_claims",
    "accu_fuse",
    "multitruth_fuse",
    "gensums_fuse",
    "investment_fuse",
]


@dataclass(slots=True)
class CompiledClaims:
    """A :class:`ClaimSet` flattened into parallel integer-indexed arrays.

    A *pair* is one ``(item, value)`` candidate; pairs are contiguous
    per item, claims are contiguous per pair, and the CSR offset
    tables below index them without any hashing:

    - ``item_pair_start[i] : item_pair_start[i + 1]`` — item *i*'s pairs;
    - ``pair_claim_start[p] : pair_claim_start[p + 1]`` — indices into
      ``pair_claim_ids`` of the claims asserting pair *p*;
    - ``source_claim_start[s] : source_claim_start[s + 1]`` — indices
      into ``source_claim_ids`` of source *s*'s claims (ascending
      global claim order);
    - ``item_source_start[i] : item_source_start[i + 1]`` — sources
      covering item *i*, in the legacy set-iteration order.
    """

    items: list[Item]
    sources: list[str]
    extractors: list[str]
    pair_item: list[int]
    pair_value: list[str]
    item_pair_start: list[int]
    claim_pair: list[int]
    claim_source: list[int]
    claim_extractor: list[int]
    claim_conf: array
    pair_claim_start: list[int]
    pair_claim_ids: list[int]
    # Pre-gathered per-pair views (pair_claim_ids resolved through
    # claim_source / claim_conf once, at compile time): one less
    # indirection in the vote/score hot loops.
    pair_claim_source: list[int]
    pair_claim_conf: array
    source_claim_start: list[int]
    source_claim_ids: list[int]
    item_source_start: list[int]
    item_sources: list[int]
    # Per pair: claiming source -> max claim confidence, in
    # first-claim order (what multi-truth's ``claimers`` dict sees).
    pair_claimers: list[dict[int, float]]

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_item)

    @property
    def n_sources(self) -> int:
        return len(self.sources)

    @property
    def n_claims(self) -> int:
        return len(self.claim_pair)

    def pair_key(self, pair: int) -> tuple[Item, str]:
        """The ``(item, value)`` belief key of one pair."""
        return self.items[self.pair_item[pair]], self.pair_value[pair]

    def item_pairs(self, item: int) -> range:
        return range(self.item_pair_start[item], self.item_pair_start[item + 1])

    def decode_beliefs(self, scores) -> dict[tuple[Item, str], float]:
        items, pair_item, pair_value = self.items, self.pair_item, self.pair_value
        return {
            (items[pair_item[p]], pair_value[p]): scores[p]
            for p in range(len(pair_item))
        }

    def decode_quality(self, scores) -> dict[str, float]:
        return {name: scores[s] for s, name in enumerate(self.sources)}


def compile_claims(claims: ClaimSet) -> CompiledClaims:
    """One-pass compilation of a claim set into flat arrays."""
    source_id: dict[str, int] = {}
    extractor_id: dict[str, int] = {}
    claim_list = list(claims)
    claim_index = {id(claim): index for index, claim in enumerate(claim_list)}

    n_claims = len(claim_list)
    claim_pair = [0] * n_claims
    claim_source = [0] * n_claims
    claim_extractor = [0] * n_claims
    claim_conf = array("d", bytes(8 * n_claims))
    for index, claim in enumerate(claim_list):
        source = source_id.setdefault(claim.source_id, len(source_id))
        extractor = extractor_id.setdefault(
            claim.extractor_id, len(extractor_id)
        )
        claim_source[index] = source
        claim_extractor[index] = extractor
        claim_conf[index] = claim.confidence

    items: list[Item] = []
    pair_item: list[int] = []
    pair_value: list[str] = []
    item_pair_start = [0]
    pair_claim_start = [0]
    pair_claim_ids: list[int] = []
    item_source_start = [0]
    item_sources: list[int] = []
    pair_claimers: list[dict[int, float]] = []
    for item in claims.items():
        item_idx = len(items)
        items.append(item)
        for value, value_claims in claims.values_of(item).items():
            pair = len(pair_item)
            pair_item.append(item_idx)
            pair_value.append(value)
            claimers: dict[int, float] = {}
            for claim in value_claims:
                index = claim_index[id(claim)]
                claim_pair[index] = pair
                pair_claim_ids.append(index)
                source = claim_source[index]
                claimers[source] = max(
                    claimers.get(source, 0.0), claim.confidence
                )
            pair_claimers.append(claimers)
            pair_claim_start.append(len(pair_claim_ids))
        # Covering sources in the same set-iteration order the legacy
        # per-round loops observe (stable within one process).
        item_sources.extend(
            source_id[name] for name in claims.sources_claiming(item)
        )
        item_source_start.append(len(item_sources))
        item_pair_start.append(len(pair_item))

    pair_claim_source = [claim_source[index] for index in pair_claim_ids]
    pair_claim_conf = array(
        "d", (claim_conf[index] for index in pair_claim_ids)
    )

    source_claim_start = [0] * (len(source_id) + 1)
    for source in claim_source:
        source_claim_start[source + 1] += 1
    for source in range(len(source_id)):
        source_claim_start[source + 1] += source_claim_start[source]
    cursor = list(source_claim_start)
    source_claim_ids = [0] * n_claims
    for index, source in enumerate(claim_source):
        source_claim_ids[cursor[source]] = index
        cursor[source] += 1

    return CompiledClaims(
        items=items,
        sources=list(source_id),
        extractors=list(extractor_id),
        pair_item=pair_item,
        pair_value=pair_value,
        item_pair_start=item_pair_start,
        claim_pair=claim_pair,
        claim_source=claim_source,
        claim_extractor=claim_extractor,
        claim_conf=claim_conf,
        pair_claim_start=pair_claim_start,
        pair_claim_ids=pair_claim_ids,
        pair_claim_source=pair_claim_source,
        pair_claim_conf=pair_claim_conf,
        source_claim_start=source_claim_start,
        source_claim_ids=source_claim_ids,
        item_source_start=item_source_start,
        item_sources=item_sources,
        pair_claimers=pair_claimers,
    )


# ----------------------------------------------------------------------
# ACCU / POPACCU


def accu_fuse(
    compiled: CompiledClaims,
    *,
    n_false_values: int = 10,
    initial_accuracy: float = 0.8,
    initial_accuracies: dict[str, float] | None = None,
    source_weights: dict[str, float] | None = None,
    max_iterations: int = 20,
    tolerance: float = 1e-4,
    min_accuracy: float = 0.05,
    max_accuracy: float = 0.99,
    popularity: bool = False,
    name: str = "accu",
) -> FusionResult:
    """ACCU (or POPACCU when ``popularity``) over compiled arrays."""
    cc = compiled
    initial_accuracies = initial_accuracies or {}
    source_weights = source_weights or {}
    accuracy = [
        initial_accuracies.get(source, initial_accuracy)
        for source in cc.sources
    ]
    weight = [source_weights.get(source, 1.0) for source in cc.sources]
    uniform_weights = all(w == 1.0 for w in weight)

    n_pairs = cc.n_pairs
    probabilities = array("d", bytes(8 * n_pairs))
    votes = array("d", bytes(8 * n_pairs))
    pair_start = cc.pair_claim_start
    pair_source = cc.pair_claim_source
    claim_source = cc.claim_source
    claim_pair = cc.claim_pair
    item_pair_start = cc.item_pair_start
    n_items = cc.n_items
    n_sources = cc.n_sources
    term = [0.0] * n_sources

    iterations = 0
    converged_at: int | None = None
    for iterations in range(1, max_iterations + 1):
        if not popularity:
            # The legacy loop calls log(n * a / (1 - a)) per *claim*;
            # the input only varies per source, so hoist it (same
            # float, computed once).
            for s in range(n_sources):
                clamped = accuracy[s]
                if clamped < min_accuracy:
                    clamped = min_accuracy
                elif clamped > max_accuracy:
                    clamped = max_accuracy
                term[s] = log(n_false_values * clamped / (1.0 - clamped))

        for item in range(n_items):
            begin = item_pair_start[item]
            end = item_pair_start[item + 1]
            if popularity:
                total_claims = pair_start[end] - pair_start[begin]
                competing = 0.0
                for pair in range(begin, end):
                    share = (
                        pair_start[pair + 1] - pair_start[pair]
                    ) / total_claims
                    competing += share * share
                effective_n = max(1.0, 1.0 / competing)
            top = None
            for pair in range(begin, end):
                vote = 0.0
                for index in range(pair_start[pair], pair_start[pair + 1]):
                    s = pair_source[index]
                    if popularity:
                        clamped = accuracy[s]
                        if clamped < min_accuracy:
                            clamped = min_accuracy
                        elif clamped > max_accuracy:
                            clamped = max_accuracy
                        contribution = log(
                            effective_n * clamped / (1.0 - clamped)
                        )
                    else:
                        contribution = term[s]
                    if uniform_weights:
                        vote += contribution
                    else:
                        vote += weight[s] * contribution
                if popularity:
                    share = (
                        pair_start[pair + 1] - pair_start[pair]
                    ) / total_claims
                    vote *= 1.0 - 0.5 * share
                votes[pair] = vote
                if top is None or vote > top:
                    top = vote
            total = 0.0
            for pair in range(begin, end):
                shifted = exp(votes[pair] - top)
                votes[pair] = shifted
                total += shifted
            for pair in range(begin, end):
                probabilities[pair] = votes[pair] / total

        sums = [0.0] * n_sources
        counts = [0] * n_sources
        for index in range(cc.n_claims):
            s = claim_source[index]
            sums[s] += probabilities[claim_pair[index]]
            counts[s] += 1
        delta = 0.0
        for s in range(n_sources):
            estimate = sums[s] / counts[s]
            if estimate < min_accuracy:
                estimate = min_accuracy
            elif estimate > max_accuracy:
                estimate = max_accuracy
            difference = abs(estimate - accuracy[s])
            if difference > delta:
                delta = difference
            accuracy[s] = estimate
        if delta < tolerance:
            converged_at = iterations
            break

    result = FusionResult(name)
    result.iterations = iterations
    result.converged_at = converged_at
    result.source_quality = cc.decode_quality(accuracy)
    result.belief = cc.decode_beliefs(probabilities)
    _single_truths(cc, probabilities, result)
    return result


def _single_truths(cc: CompiledClaims, scores, result: FusionResult) -> None:
    """Per item, pick the best-scoring value (ties break on the key)."""
    pair_value = cc.pair_value
    for item in range(cc.n_items):
        best_pair = cc.item_pair_start[item]
        best = (-scores[best_pair], pair_value[best_pair])
        for pair in range(best_pair + 1, cc.item_pair_start[item + 1]):
            key = (-scores[pair], pair_value[pair])
            if key < best:
                best = key
        result.truths[cc.items[item]] = {best[1]}


# ----------------------------------------------------------------------
# Multi-truth


def multitruth_fuse(
    compiled: CompiledClaims,
    *,
    prior: float = 0.3,
    threshold: float = 0.5,
    initial_sensitivity: float = 0.7,
    initial_specificity: float = 0.9,
    source_weights: dict[str, float] | None = None,
    use_confidence: bool = False,
    max_iterations: int = 20,
    tolerance: float = 1e-4,
    floor: float = 0.02,
    name: str = "multitruth",
) -> FusionResult:
    """Two-sided multi-truth fusion over compiled arrays."""
    cc = compiled
    source_weights = source_weights or {}
    n_sources = cc.n_sources
    weight = [source_weights.get(source, 1.0) for source in cc.sources]
    sensitivity = [initial_sensitivity] * n_sources
    specificity = [initial_specificity] * n_sources
    ceiling = 1.0 - floor

    n_pairs = cc.n_pairs
    posterior = array("d", bytes(8 * n_pairs))
    log_claim = [0.0] * n_sources
    log_silent = [0.0] * n_sources
    item_pair_start = cc.item_pair_start
    item_source_start = cc.item_source_start
    item_sources = cc.item_sources
    pair_claimers = cc.pair_claimers
    prior_logodds = log(prior / (1.0 - prior))
    smoothing = 2.0

    iterations = 0
    converged_at: int | None = None
    for iterations in range(1, max_iterations + 1):
        # Per-source log-likelihood ratios for this round (the legacy
        # loop recomputes these logs per (value, source) visit).
        for s in range(n_sources):
            sens = sensitivity[s]
            if sens < floor:
                sens = floor
            elif sens > ceiling:
                sens = ceiling
            spec = specificity[s]
            if spec < floor:
                spec = floor
            elif spec > ceiling:
                spec = ceiling
            log_claim[s] = log(sens / (1.0 - spec))
            log_silent[s] = log((1.0 - sens) / spec)

        for item in range(cc.n_items):
            cover_begin = item_source_start[item]
            cover_end = item_source_start[item + 1]
            for pair in range(item_pair_start[item], item_pair_start[item + 1]):
                claimers = pair_claimers[pair]
                logodds = prior_logodds
                for index in range(cover_begin, cover_end):
                    s = item_sources[index]
                    if s in claimers:
                        confidence = claimers[s] if use_confidence else 1.0
                        logodds += weight[s] * confidence * log_claim[s]
                    else:
                        logodds += weight[s] * log_silent[s]
                posterior[pair] = 1.0 / (1.0 + exp(-logodds))

        claimed_true = [0.0] * n_sources
        covered_true = [0.0] * n_sources
        silent_false = [0.0] * n_sources
        covered_false = [0.0] * n_sources
        for item in range(cc.n_items):
            cover_begin = item_source_start[item]
            cover_end = item_source_start[item + 1]
            begin = item_pair_start[item]
            end = item_pair_start[item + 1]
            contested = end - begin >= 2
            for pair in range(begin, end):
                probability = posterior[pair]
                complement = 1.0 - probability
                claimers = pair_claimers[pair]
                for index in range(cover_begin, cover_end):
                    s = item_sources[index]
                    covered_true[s] += probability
                    if contested:
                        covered_false[s] += complement
                    if s in claimers:
                        claimed_true[s] += probability
                    elif contested:
                        silent_false[s] += complement

        delta = 0.0
        for s in range(n_sources):
            sens = (claimed_true[s] + smoothing * initial_sensitivity) / (
                covered_true[s] + smoothing
            )
            if sens < floor:
                sens = floor
            elif sens > ceiling:
                sens = ceiling
            spec = (silent_false[s] + smoothing * initial_specificity) / (
                covered_false[s] + smoothing
            )
            if spec < floor:
                spec = floor
            elif spec > ceiling:
                spec = ceiling
            difference = abs(sens - sensitivity[s])
            if difference > delta:
                delta = difference
            difference = abs(spec - specificity[s])
            if difference > delta:
                delta = difference
            sensitivity[s] = sens
            specificity[s] = spec
        if delta < tolerance:
            converged_at = iterations
            break

    result = FusionResult(name)
    result.iterations = iterations
    result.converged_at = converged_at
    result.belief = cc.decode_beliefs(posterior)
    result.source_quality = {
        source: (sensitivity[s] + specificity[s]) / 2.0
        for s, source in enumerate(cc.sources)
    }
    pair_value = cc.pair_value
    for item in range(cc.n_items):
        begin = item_pair_start[item]
        end = item_pair_start[item + 1]
        decided = {
            pair_value[pair]
            for pair in range(begin, end)
            if posterior[pair] >= threshold
        }
        if not decided:
            best = (-posterior[begin], pair_value[begin])
            for pair in range(begin + 1, end):
                key = (-posterior[pair], pair_value[pair])
                if key < best:
                    best = key
            decided = {best[1]}
        result.truths[cc.items[item]] = decided
    return result


# ----------------------------------------------------------------------
# Confidence-weighted fact-finders


def gensums_fuse(
    compiled: CompiledClaims,
    *,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    use_confidence: bool = True,
    name: str = "gensums",
) -> FusionResult:
    """Generalized Sums (Hubs & Authorities) over compiled arrays."""
    cc = compiled
    n_sources = cc.n_sources
    trust = [1.0] * n_sources
    n_pairs = cc.n_pairs
    belief = array("d", bytes(8 * n_pairs))
    pair_start = cc.pair_claim_start
    pair_source = cc.pair_claim_source
    pair_conf = cc.pair_claim_conf
    claim_source = cc.claim_source
    claim_pair = cc.claim_pair
    claim_conf = cc.claim_conf
    item_pair_start = cc.item_pair_start

    iterations = 0
    converged_at: int | None = None
    for iterations in range(1, max_iterations + 1):
        for item in range(cc.n_items):
            begin = item_pair_start[item]
            end = item_pair_start[item + 1]
            top = 0.0
            for pair in range(begin, end):
                score = 0
                for index in range(pair_start[pair], pair_start[pair + 1]):
                    if use_confidence:
                        score = score + trust[pair_source[index]] * pair_conf[index]
                    else:
                        score = score + trust[pair_source[index]]
                belief[pair] = score
                if score > top:
                    top = score
            if top <= 0.0:
                for pair in range(begin, end):
                    belief[pair] = 0.0
            else:
                for pair in range(begin, end):
                    belief[pair] = belief[pair] / top

        new_trust = [0.0] * n_sources
        for index in range(cc.n_claims):
            s = claim_source[index]
            if use_confidence:
                new_trust[s] += claim_conf[index] * belief[claim_pair[index]]
            else:
                new_trust[s] += belief[claim_pair[index]]
        top = max(new_trust) or 1.0
        delta = 0.0
        for s in range(n_sources):
            scaled = new_trust[s] / top
            difference = abs(scaled - trust[s])
            if difference > delta:
                delta = difference
            trust[s] = scaled
        if delta < tolerance:
            converged_at = iterations
            break

    result = FusionResult(name)
    result.iterations = iterations
    result.converged_at = converged_at
    result.belief = cc.decode_beliefs(belief)
    result.source_quality = cc.decode_quality(trust)
    _single_truths(cc, belief, result)
    return result


def investment_fuse(
    compiled: CompiledClaims,
    *,
    growth: float = 1.2,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    use_confidence: bool = True,
    name: str = "investment",
) -> FusionResult:
    """Investment fact-finder over compiled arrays.

    The per-claim investment shares and the (source, pair) stake slots
    are structural — they never change across rounds — so they are
    compiled once; each round is then two passes over flat arrays.
    """
    cc = compiled
    n_sources = cc.n_sources
    n_claims = cc.n_claims
    claim_source = cc.claim_source
    claim_pair = cc.claim_pair
    claim_conf = cc.claim_conf

    totals = [0.0] * n_sources
    for index in range(n_claims):
        totals[claim_source[index]] += (
            claim_conf[index] if use_confidence else 1.0
        )
    claim_share = array("d", bytes(8 * n_claims))
    # Stake slots in first-occurrence order over the global claim
    # order — the exact insertion order of the legacy ``stake`` dict.
    slot_of: dict[tuple[int, int], int] = {}
    claim_slot = [0] * n_claims
    slot_source: list[int] = []
    slot_pair: list[int] = []
    for index in range(n_claims):
        weight = claim_conf[index] if use_confidence else 1.0
        claim_share[index] = weight / totals[claim_source[index]]
        key = (claim_source[index], claim_pair[index])
        slot = slot_of.get(key)
        if slot is None:
            slot = len(slot_of)
            slot_of[key] = slot
            slot_source.append(key[0])
            slot_pair.append(key[1])
        claim_slot[index] = slot
    n_slots = len(slot_of)

    trust = [1.0] * n_sources
    n_pairs = cc.n_pairs
    invested = array("d", bytes(8 * n_pairs))
    belief = array("d", bytes(8 * n_pairs))
    stake = array("d", bytes(8 * n_slots))
    item_pair_start = cc.item_pair_start

    iterations = 0
    converged_at: int | None = None
    for iterations in range(1, max_iterations + 1):
        for pair in range(n_pairs):
            invested[pair] = 0.0
        for slot in range(n_slots):
            stake[slot] = 0.0
        for index in range(n_claims):
            credit = trust[claim_source[index]] * claim_share[index]
            invested[claim_pair[index]] += credit
            stake[claim_slot[index]] += credit
        for pair in range(n_pairs):
            belief[pair] = invested[pair] ** growth
        for item in range(cc.n_items):
            begin = item_pair_start[item]
            end = item_pair_start[item + 1]
            top = belief[begin]
            for pair in range(begin + 1, end):
                if belief[pair] > top:
                    top = belief[pair]
            if top <= 0.0:
                for pair in range(begin, end):
                    belief[pair] = 0.0
            else:
                for pair in range(begin, end):
                    belief[pair] = belief[pair] / top

        new_trust = [0.0] * n_sources
        for slot in range(n_slots):
            pair = slot_pair[slot]
            if invested[pair] > 0:
                new_trust[slot_source[slot]] += (
                    belief[pair] * stake[slot] / invested[pair]
                )
        top = max(new_trust) or 1.0
        delta = 0.0
        for s in range(n_sources):
            scaled = new_trust[s] / top
            difference = abs(scaled - trust[s])
            if difference > delta:
                delta = difference
            trust[s] = scaled
        if delta < tolerance:
            converged_at = iterations
            break

    result = FusionResult(name)
    result.iterations = iterations
    result.converged_at = converged_at
    result.belief = cc.decode_beliefs(belief)
    result.source_quality = cc.decode_quality(trust)
    _single_truths(cc, belief, result)
    return result
