"""ACCU and POPACCU: accuracy-based Bayesian truth discovery.

Adaptations of the data-fusion methods Dong et al. scaled up for
knowledge fusion [13]:

* **ACCU** (Dong et al., PVLDB'09, independence case) — iterate between
  (a) scoring each value by the log-odds votes of the sources claiming
  it, where a source of accuracy ``A`` casts ``ln(n·A / (1-A))``, and
  (b) re-estimating each source's accuracy as the average probability
  of the values it claims.  ``n`` is the assumed number of uniformly
  likely false values per item.
* **POPACCU** (Dong et al., VLDB'14) — drops the uniform-false-value
  assumption: the penalty for a wrong value follows the *observed
  popularity* of the competing values, making the method robust when
  false values are heavily skewed (e.g. a meme value copied
  everywhere).

Both assume a single truth per item; both support per-source initial
accuracies (e.g. from a gold standard, as the paper's improvement
suggests) and optional per-source weights (used by the
correlation-aware wrapper).
"""

from __future__ import annotations

import math

from repro.errors import FusionError
from repro.fusion.base import ClaimSet, FusionMethod, FusionResult, Item


class Accu(FusionMethod):
    """ACCU: Bayesian single-truth discovery with source accuracies.

    With ``compiled=True`` (the default) the fixed-point rounds run
    over :mod:`repro.fusion.compiled` flat arrays — same float
    operation order, so truths are byte-identical to the dict-based
    path and beliefs bit-equal; ``compiled=False`` keeps the original
    loops (the reference the equivalence tests pin against).
    ``tolerance=0`` disables the convergence early-exit.
    """

    name = "accu"
    _popularity = False  # POPACCU flips this for the compiled kernel.

    def __init__(
        self,
        *,
        n_false_values: int = 10,
        initial_accuracy: float = 0.8,
        initial_accuracies: dict[str, float] | None = None,
        source_weights: dict[str, float] | None = None,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
        min_accuracy: float = 0.05,
        max_accuracy: float = 0.99,
        compiled: bool = True,
    ) -> None:
        if n_false_values < 1:
            raise FusionError("n_false_values must be >= 1")
        if not 0 < initial_accuracy < 1:
            raise FusionError("initial_accuracy must lie in (0, 1)")
        self.n_false_values = n_false_values
        self.initial_accuracy = initial_accuracy
        self.initial_accuracies = dict(initial_accuracies or {})
        self.source_weights = dict(source_weights or {})
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.min_accuracy = min_accuracy
        self.max_accuracy = max_accuracy
        self.compiled = compiled

    # ------------------------------------------------------------------
    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        if self.compiled:
            from repro.fusion.compiled import accu_fuse, compile_claims

            return accu_fuse(
                compile_claims(claims),
                n_false_values=self.n_false_values,
                initial_accuracy=self.initial_accuracy,
                initial_accuracies=self.initial_accuracies,
                source_weights=self.source_weights,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                min_accuracy=self.min_accuracy,
                max_accuracy=self.max_accuracy,
                popularity=self._popularity,
                name=self.name,
            )
        accuracy = {
            source: self.initial_accuracies.get(source, self.initial_accuracy)
            for source in claims.sources()
        }
        probabilities: dict[tuple[Item, str], float] = {}
        iterations = 0
        converged_at = None
        for iterations in range(1, self.max_iterations + 1):
            probabilities = self._estimate_probabilities(claims, accuracy)
            new_accuracy = self._estimate_accuracy(claims, probabilities)
            delta = max(
                abs(new_accuracy[source] - accuracy[source])
                for source in accuracy
            )
            accuracy = new_accuracy
            if delta < self.tolerance:
                converged_at = iterations
                break
        result = FusionResult(self.name)
        result.iterations = iterations
        result.converged_at = converged_at
        result.source_quality = accuracy
        result.belief = probabilities
        for item in claims.items():
            values = claims.values_of(item)
            winner = min(
                values,
                key=lambda value: (-probabilities[(item, value)], value),
            )
            result.truths[item] = {winner}
        return result

    # ------------------------------------------------------------------
    def _vote_counts(
        self, claims: ClaimSet, accuracy: dict[str, float], item: Item
    ) -> dict[str, float]:
        """Log-odds vote per value of one item."""
        votes: dict[str, float] = {}
        for value, value_claims in claims.values_of(item).items():
            vote = 0.0
            for claim in value_claims:
                source_accuracy = min(
                    max(accuracy[claim.source_id], self.min_accuracy),
                    self.max_accuracy,
                )
                weight = self.source_weights.get(claim.source_id, 1.0)
                vote += weight * math.log(
                    self.n_false_values
                    * source_accuracy
                    / (1.0 - source_accuracy)
                )
            votes[value] = vote
        return votes

    def _estimate_probabilities(
        self, claims: ClaimSet, accuracy: dict[str, float]
    ) -> dict[tuple[Item, str], float]:
        probabilities: dict[tuple[Item, str], float] = {}
        for item in claims.items():
            votes = self._vote_counts(claims, accuracy, item)
            top = max(votes.values())
            weights = {
                value: math.exp(vote - top) for value, vote in votes.items()
            }
            total = sum(weights.values())
            for value, weight in weights.items():
                probabilities[(item, value)] = weight / total
        return probabilities

    def _estimate_accuracy(
        self,
        claims: ClaimSet,
        probabilities: dict[tuple[Item, str], float],
    ) -> dict[str, float]:
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for claim in claims:
            sums[claim.source_id] = sums.get(claim.source_id, 0.0) + (
                probabilities[(claim.item, claim.value)]
            )
            counts[claim.source_id] = counts.get(claim.source_id, 0) + 1
        return {
            source: min(
                max(sums[source] / counts[source], self.min_accuracy),
                self.max_accuracy,
            )
            for source in sums
        }


class PopAccu(Accu):
    """POPACCU: popularity-aware variant of ACCU.

    The false-value count ``n`` is replaced, per item, by an effective
    count derived from the empirical value distribution: with ``k``
    observed competing values of popularity share ``p_i``, the penalty
    uses the inverse participation ratio ``1 / Σ p_i²`` (uniform
    distributions recover plain ACCU; skewed ones lower the effective
    count, weakening the boost a popular false value gets).
    """

    name = "popaccu"
    _popularity = True

    def _vote_counts(
        self, claims: ClaimSet, accuracy: dict[str, float], item: Item
    ) -> dict[str, float]:
        values = claims.values_of(item)
        total_claims = sum(len(value_claims) for value_claims in values.values())
        if total_claims == 0:
            return {}
        shares = {
            value: len(value_claims) / total_claims
            for value, value_claims in values.items()
        }
        competing = sum(share * share for share in shares.values())
        effective_n = max(1.0, 1.0 / competing)
        votes: dict[str, float] = {}
        for value, value_claims in values.items():
            vote = 0.0
            for claim in value_claims:
                source_accuracy = min(
                    max(accuracy[claim.source_id], self.min_accuracy),
                    self.max_accuracy,
                )
                weight = self.source_weights.get(claim.source_id, 1.0)
                vote += weight * math.log(
                    effective_n * source_accuracy / (1.0 - source_accuracy)
                )
            # Popular values earn proportionally less per-claim boost:
            # a claim of a common value is weaker evidence of truth.
            votes[value] = vote * (1.0 - 0.5 * shares[value])
        return votes
