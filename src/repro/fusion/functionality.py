"""Functionality-degree estimation for attributes.

The paper singles this out as an open problem: "very few works have
considered the functionality degree of attributes" (Sec. 1).  The
functionality degree of an attribute is (informally) the inverse of how
many true values an entity typically has for it — 1.0 for a strictly
functional attribute (birth date), lower for multi-valued ones
(children, cast).

The estimator recovers the degree *from the claims themselves*, without
schema knowledge: for each predicate it measures how many distinct
values a single source asserts per subject (a source asserting several
values for the same subject believes the attribute is multi-valued; a
conflict *between* sources does not).  The degree feeds fusion as a
per-predicate decision policy: high-degree predicates keep a single
truth, low-degree ones may keep several.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.errors import FusionError
from repro.fusion.base import ClaimSet


@dataclass(slots=True)
class FunctionalityEstimate:
    """Per-predicate functionality degrees in ``(0, 1]``."""

    degree: dict[str, float] = field(default_factory=dict)
    default: float = 1.0

    def of(self, predicate: str) -> float:
        return self.degree.get(predicate, self.default)

    def is_functional(self, predicate: str, *, threshold: float = 0.75) -> bool:
        """Classify a predicate as (practically) functional."""
        return self.of(predicate) >= threshold


class FunctionalityEstimator:
    """Estimate functionality degrees from a claim set.

    Parameters
    ----------
    min_observations:
        Predicates observed on fewer (source, subject) pairs keep the
        default degree of 1.0 (assume functional when unsure — the
        conservative choice, matching how existing KBs treat unknown
        properties).
    """

    def __init__(self, *, min_observations: int = 5) -> None:
        if min_observations < 1:
            raise FusionError("min_observations must be >= 1")
        self.min_observations = min_observations

    def estimate(self, claims: ClaimSet) -> FunctionalityEstimate:
        # (predicate, subject, source) -> distinct value count.
        counts: dict[tuple[str, str, str], set[str]] = {}
        for claim in claims:
            subject, predicate = claim.item
            counts.setdefault(
                (predicate, subject, claim.source_id), set()
            ).add(claim.value)
        per_predicate: dict[str, list[int]] = {}
        for (predicate, _subject, _source), values in counts.items():
            per_predicate.setdefault(predicate, []).append(len(values))
        estimate = FunctionalityEstimate()
        for predicate, observations in per_predicate.items():
            if len(observations) < self.min_observations:
                continue
            typical = median(observations)
            estimate.degree[predicate] = 1.0 / max(1.0, typical)
        return estimate


def functional_oracle_from_claims(
    claims: ClaimSet,
    *,
    threshold: float = 0.75,
    min_observations: int = 5,
):
    """Build a ``predicate -> bool`` oracle for
    :class:`repro.fusion.knowledge_fusion.KnowledgeFusion` straight from
    the claims (unsupervised replacement for a schema oracle)."""
    estimate = FunctionalityEstimator(
        min_observations=min_observations
    ).estimate(claims)
    return lambda predicate: estimate.is_functional(
        predicate, threshold=threshold
    )
