"""Hierarchical value-space reasoning for fusion (Sec. 3.2, bullet 2).

The paper observes that existing fusion treats values at different
abstraction levels as conflicting, although ``(Susie Fang, birth place,
China)`` and ``(Susie Fang, birth place, Wuhan)`` are both true.  This
module wraps any base fusion method with hierarchy awareness:

1. **claim expansion** — a claim of a specific value also (virtually)
   claims each of its generalisations, with confidence decayed per
   level, so related values support rather than fight each other;
2. **specialisation** — after the base method decides, the winner is
   refined to the most specific observed value on its chain whose
   belief stays within a ratio of the winner's;
3. **chain truths** — the decided truth set contains the winning value
   plus its observed generalisations (they are all true).
"""

from __future__ import annotations

from repro.fusion.base import (
    Claim,
    ClaimSet,
    FusionMethod,
    FusionResult,
    value_key,
)
from repro.rdf.hierarchy import ValueHierarchy


class CasefoldHierarchy:
    """A :class:`ValueHierarchy` view keyed by casefolded value keys."""

    def __init__(self, hierarchy: ValueHierarchy) -> None:
        self._parent: dict[str, str] = {}
        for node in hierarchy:
            parent = hierarchy.parent(node)
            if parent is not None:
                self._parent[value_key(node)] = value_key(parent)

    def __contains__(self, key: str) -> bool:
        return key in self._parent or key in set(self._parent.values())

    def ancestors(self, key: str) -> list[str]:
        out: list[str] = []
        current = self._parent.get(key)
        seen: set[str] = set()
        while current is not None and current not in seen:
            out.append(current)
            seen.add(current)
            current = self._parent.get(current)
        return out

    def chain(self, key: str) -> list[str]:
        return [key, *self.ancestors(key)]

    def depth(self, key: str) -> int:
        return len(self.ancestors(key))

    def on_same_chain(self, left: str, right: str) -> bool:
        return (
            left == right
            or left in self.ancestors(right)
            or right in self.ancestors(left)
        )


class HierarchicalFusion(FusionMethod):
    """Hierarchy-aware wrapper around any base fusion method.

    Parameters
    ----------
    base:
        The underlying method (ACCU, multi-truth, ...).
    hierarchy:
        The value hierarchy (e.g. locations).
    decay:
        Confidence decay per generalisation level for virtual claims.
    specialize_share:
        A more specific observed value replaces the winner when the
        share of the chain's direct source support it holds reaches
        this fraction.  Direct support (who actually asserted the exact
        value) is used rather than base beliefs because iterative
        methods produce winner-take-all belief distributions.
    """

    def __init__(
        self,
        base: FusionMethod,
        hierarchy: ValueHierarchy,
        *,
        decay: float = 0.9,
        specialize_share: float = 0.25,
    ) -> None:
        if not 0 < decay <= 1:
            raise ValueError("decay must lie in (0, 1]")
        if not 0 < specialize_share <= 1:
            raise ValueError("specialize_share must lie in (0, 1]")
        self.base = base
        self.hierarchy = CasefoldHierarchy(hierarchy)
        self.decay = decay
        self.specialize_share = specialize_share
        self.name = f"hier({base.name})"

    # ------------------------------------------------------------------
    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        expanded = self._expand(claims)
        result = self.base.fuse(expanded)
        return self._specialize(claims, result)

    # ------------------------------------------------------------------
    def _expand(self, claims: ClaimSet) -> ClaimSet:
        """Add virtual generalisation claims for hierarchical values."""
        expanded = ClaimSet()
        for claim in claims:
            expanded.add(claim)
            confidence = claim.confidence
            for ancestor in self.hierarchy.ancestors(claim.value):
                confidence *= self.decay
                expanded.add(
                    Claim(
                        item=claim.item,
                        value=ancestor,
                        lexical=ancestor,
                        source_id=claim.source_id,
                        extractor_id=claim.extractor_id,
                        confidence=confidence,
                    )
                )
        return expanded

    def _specialize(
        self, original: ClaimSet, result: FusionResult
    ) -> FusionResult:
        """Refine winners to the most specific well-supported value."""
        refined = FusionResult(self.name)
        refined.iterations = result.iterations
        refined.source_quality = result.source_quality
        refined.belief = dict(result.belief)
        for item in original.items():
            values = original.values_of(item)
            support = {
                value: len({claim.source_id for claim in claims})
                for value, claims in values.items()
            }
            truths: set[str] = set()
            for winner in result.truths.get(item, set()):
                chain_members = [
                    value
                    for value in support
                    if self.hierarchy.on_same_chain(value, winner)
                ]
                if not chain_members:
                    truths.add(winner)
                    continue
                chain_support = sum(support[value] for value in chain_members)
                best = winner
                for value in sorted(
                    chain_members,
                    key=lambda v: (-self.hierarchy.depth(v), v),
                ):
                    if (
                        self.hierarchy.depth(value)
                        <= self.hierarchy.depth(winner)
                        and value != winner
                    ):
                        continue
                    if support[value] >= self.specialize_share * chain_support:
                        best = value
                        break
                # The winner's chain is jointly true; report the
                # specific winner plus its observed generalisations.
                truths.add(best)
                for ancestor in self.hierarchy.ancestors(best):
                    if ancestor in support:
                        truths.add(ancestor)
            refined.truths[item] = truths
        return refined
