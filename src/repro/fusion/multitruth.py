"""Multi-truth Bayesian fusion (two-sided source quality).

Following Zhao et al.'s insight (PVLDB'12) that the paper adopts for
non-functional attributes: when an item can have *several* true values,
a single per-source accuracy is the wrong model — a source can be
precise yet incomplete.  Each source therefore carries

* **sensitivity** (recall): the chance it asserts a value that is true,
* **specificity**: the chance it stays silent on a value that is false,

and each candidate value is judged independently by posterior odds:

``odds(v) = prior_odds · Π_s  L_s(v)``

where, over sources that cover the item, a source claiming ``v``
contributes ``sens_s / (1 - spec_s)`` and a covering source silent on
``v`` contributes ``(1 - sens_s) / spec_s``.  Values with posterior
probability above a threshold are truths — one, several, or none per
item.  Quality parameters are re-estimated from the decisions until
convergence (a scalable hard-EM in place of the paper's Gibbs
sampling).

Optional hooks used by the paper's combined method:

* ``source_weights`` — exponents damping the likelihood ratios of
  correlated sources (a clique of copiers counts roughly once);
* ``use_confidence`` — claims enter as soft evidence: the likelihood
  ratio is tempered by the claim's extraction confidence.
"""

from __future__ import annotations

import math

from repro.errors import FusionError
from repro.fusion.base import ClaimSet, FusionMethod, FusionResult, Item


class MultiTruth(FusionMethod):
    """Two-sided (sensitivity/specificity) multi-truth fusion."""

    name = "multitruth"

    def __init__(
        self,
        *,
        prior: float = 0.3,
        threshold: float = 0.5,
        initial_sensitivity: float = 0.7,
        initial_specificity: float = 0.9,
        source_weights: dict[str, float] | None = None,
        use_confidence: bool = False,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
        floor: float = 0.02,
        compiled: bool = True,
    ) -> None:
        if not 0 < prior < 1:
            raise FusionError("prior must lie in (0, 1)")
        if not 0 < threshold < 1:
            raise FusionError("threshold must lie in (0, 1)")
        self.prior = prior
        self.threshold = threshold
        self.initial_sensitivity = initial_sensitivity
        self.initial_specificity = initial_specificity
        self.source_weights = dict(source_weights or {})
        self.use_confidence = use_confidence
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.floor = floor
        self.compiled = compiled

    # ------------------------------------------------------------------
    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        if self.compiled:
            from repro.fusion.compiled import compile_claims, multitruth_fuse

            return multitruth_fuse(
                compile_claims(claims),
                prior=self.prior,
                threshold=self.threshold,
                initial_sensitivity=self.initial_sensitivity,
                initial_specificity=self.initial_specificity,
                source_weights=self.source_weights,
                use_confidence=self.use_confidence,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                floor=self.floor,
                name=self.name,
            )
        sensitivity = {
            source: self.initial_sensitivity for source in claims.sources()
        }
        specificity = {
            source: self.initial_specificity for source in claims.sources()
        }
        posterior: dict[tuple[Item, str], float] = {}
        iterations = 0
        converged_at = None
        for iterations in range(1, self.max_iterations + 1):
            posterior = self._posteriors(claims, sensitivity, specificity)
            new_sensitivity, new_specificity = self._estimate_quality(
                claims, posterior
            )
            delta = max(
                max(
                    abs(new_sensitivity[s] - sensitivity[s])
                    for s in sensitivity
                ),
                max(
                    abs(new_specificity[s] - specificity[s])
                    for s in specificity
                ),
            )
            sensitivity, specificity = new_sensitivity, new_specificity
            if delta < self.tolerance:
                converged_at = iterations
                break

        result = FusionResult(self.name)
        result.iterations = iterations
        result.converged_at = converged_at
        result.belief = posterior
        result.source_quality = {
            source: (sensitivity[source] + specificity[source]) / 2.0
            for source in sensitivity
        }
        for item in claims.items():
            values = claims.values_of(item)
            decided = {
                value
                for value in values
                if posterior[(item, value)] >= self.threshold
            }
            if not decided:
                # Never return an empty answer: keep the best value.
                decided = {
                    min(
                        values,
                        key=lambda value: (-posterior[(item, value)], value),
                    )
                }
            result.truths[item] = decided
        return result

    # ------------------------------------------------------------------
    def _clamp(self, probability: float) -> float:
        return min(max(probability, self.floor), 1.0 - self.floor)

    def _posteriors(
        self,
        claims: ClaimSet,
        sensitivity: dict[str, float],
        specificity: dict[str, float],
    ) -> dict[tuple[Item, str], float]:
        prior_logodds = math.log(self.prior / (1.0 - self.prior))
        posterior: dict[tuple[Item, str], float] = {}
        for item in claims.items():
            values = claims.values_of(item)
            covering = claims.sources_claiming(item)
            for value, value_claims in values.items():
                claimers: dict[str, float] = {}
                for claim in value_claims:
                    confidence = (
                        claim.confidence if self.use_confidence else 1.0
                    )
                    claimers[claim.source_id] = max(
                        claimers.get(claim.source_id, 0.0), confidence
                    )
                logodds = prior_logodds
                for source in covering:
                    sens = self._clamp(sensitivity[source])
                    spec = self._clamp(specificity[source])
                    weight = self.source_weights.get(source, 1.0)
                    if source in claimers:
                        ratio = math.log(sens / (1.0 - spec))
                        # Temper by confidence: a low-confidence claim is
                        # weak evidence either way.
                        logodds += weight * claimers[source] * ratio
                    else:
                        logodds += weight * math.log((1.0 - sens) / spec)
                posterior[(item, value)] = 1.0 / (1.0 + math.exp(-logodds))
        return posterior

    def _estimate_quality(
        self,
        claims: ClaimSet,
        posterior: dict[tuple[Item, str], float],
    ) -> tuple[dict[str, float], dict[str, float]]:
        # Soft counts per source: claimed-true / all-true (sensitivity)
        # and silent-false / all-false (specificity), over covered items.
        # Specificity is only informed by *contested* items (at least
        # two distinct candidate values): on a single-candidate item a
        # claimant is never silent, so counting it would drive the
        # estimate to zero on sparse data.  Pseudo-counts anchored at
        # the initial values keep thin evidence from collapsing either
        # parameter.
        claimed_true: dict[str, float] = {}
        covered_true: dict[str, float] = {}
        silent_false: dict[str, float] = {}
        covered_false: dict[str, float] = {}
        for item in claims.items():
            values = claims.values_of(item)
            covering = claims.sources_claiming(item)
            contested = len(values) >= 2
            for value, value_claims in values.items():
                probability = posterior[(item, value)]
                claimers = {claim.source_id for claim in value_claims}
                for source in covering:
                    covered_true[source] = (
                        covered_true.get(source, 0.0) + probability
                    )
                    if contested:
                        covered_false[source] = (
                            covered_false.get(source, 0.0)
                            + (1.0 - probability)
                        )
                    if source in claimers:
                        claimed_true[source] = (
                            claimed_true.get(source, 0.0) + probability
                        )
                    elif contested:
                        silent_false[source] = (
                            silent_false.get(source, 0.0)
                            + (1.0 - probability)
                        )
        smoothing = 2.0
        sensitivity: dict[str, float] = {}
        specificity: dict[str, float] = {}
        for source in claims.sources():
            truths = covered_true.get(source, 0.0)
            falses = covered_false.get(source, 0.0)
            sensitivity[source] = self._clamp(
                (claimed_true.get(source, 0.0)
                 + smoothing * self.initial_sensitivity)
                / (truths + smoothing)
            )
            specificity[source] = self._clamp(
                (silent_false.get(source, 0.0)
                 + smoothing * self.initial_specificity)
                / (falses + smoothing)
            )
        return sensitivity, specificity
