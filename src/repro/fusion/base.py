"""Fusion claim model and method interface.

Knowledge fusion works on *claims*: a (Web source, extractor) pair
asserting a value for a data item ``(subject, predicate)``.  Claims are
derived from scored triples; values are compared by a case-folded key
so formatting variants of the same value agree.

Every fusion method consumes a :class:`ClaimSet` and returns a
:class:`FusionResult` mapping each item to its decided truths with
belief scores.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import FusionError
from repro.rdf.triple import ScoredTriple

Item = tuple[str, str]  # (subject, predicate)


def value_key(lexical: str) -> str:
    """Canonical comparison key for a claimed value."""
    return " ".join(lexical.split()).casefold()


@dataclass(frozen=True, slots=True)
class Claim:
    """One source's assertion of one value for one item."""

    item: Item
    value: str  # canonical value key
    lexical: str  # a representative original surface
    source_id: str
    extractor_id: str
    confidence: float = 1.0


class ClaimSet:
    """Indexed collection of claims.

    Deduplicates identical (item, value, source, extractor) claims,
    keeping the maximum confidence.
    """

    def __init__(self, claims: Iterable[Claim] = ()) -> None:
        self._claims: dict[tuple[Item, str, str, str], Claim] = {}
        self._by_item: dict[Item, dict[str, list[Claim]]] = {}
        self._stale = False
        for claim in claims:
            self.add(claim)

    def add(self, claim: Claim) -> None:
        key = (claim.item, claim.value, claim.source_id, claim.extractor_id)
        existing = self._claims.get(key)
        if existing is not None and existing.confidence >= claim.confidence:
            return
        self._claims[key] = claim
        self._stale = True

    def _reindex(self) -> None:
        if not self._stale:
            return
        self._by_item = {}
        for claim in self._claims.values():
            self._by_item.setdefault(claim.item, {}).setdefault(
                claim.value, []
            ).append(claim)
        self._stale = False

    def __len__(self) -> int:
        return len(self._claims)

    def __iter__(self):
        return iter(list(self._claims.values()))

    def items(self) -> list[Item]:
        self._reindex()
        return list(self._by_item)

    def values_of(self, item: Item) -> dict[str, list[Claim]]:
        """Value key → claims asserting it, for one item."""
        self._reindex()
        return self._by_item.get(item, {})

    def sources(self) -> set[str]:
        return {claim.source_id for claim in self._claims.values()}

    def extractors(self) -> set[str]:
        return {claim.extractor_id for claim in self._claims.values()}

    def sources_claiming(self, item: Item) -> set[str]:
        """Sources that assert *any* value for an item."""
        return {
            claim.source_id
            for claims in self.values_of(item).values()
            for claim in claims
        }

    def stats(self) -> "ClaimSetStats":
        """Size summary of the claim set (items/values/sources/claims)."""
        self._reindex()
        return ClaimSetStats(
            n_items=len(self._by_item),
            n_values=sum(len(values) for values in self._by_item.values()),
            n_sources=len(self.sources()),
            n_extractors=len(self.extractors()),
            n_claims=len(self._claims),
        )

    @staticmethod
    def from_scored_triples(triples: Iterable[ScoredTriple]) -> "ClaimSet":
        """Build a claim set from extractor output."""
        claims = ClaimSet()
        for scored in triples:
            triple = scored.triple
            claims.add(
                Claim(
                    item=triple.item,
                    value=value_key(triple.obj.lexical),
                    lexical=triple.obj.lexical,
                    source_id=scored.provenance.source_id,
                    extractor_id=scored.provenance.extractor_id,
                    confidence=scored.confidence,
                )
            )
        return claims


@dataclass(slots=True)
class ClaimSetStats:
    """Size summary of a :class:`ClaimSet`."""

    n_items: int
    n_values: int
    n_sources: int
    n_extractors: int
    n_claims: int


@dataclass(slots=True)
class FusionResult:
    """Decided truths and beliefs of one fusion run."""

    method: str
    truths: dict[Item, set[str]] = field(default_factory=dict)
    belief: dict[tuple[Item, str], float] = field(default_factory=dict)
    source_quality: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    # Round at which the fixed point converged (parameter delta under
    # the method's tolerance), or None when the method ran all of
    # ``max_iterations`` without converging (or does not iterate).
    converged_at: int | None = None

    def is_true(self, item: Item, value: str) -> bool:
        return value in self.truths.get(item, set())

    def decided_items(self) -> list[Item]:
        return list(self.truths)

    def belief_of(self, item: Item, value: str) -> float:
        return self.belief.get((item, value), 0.0)

    def canonical_bytes(self) -> bytes:
        """Canonical byte serialization of the whole result.

        Sorts every mapping, so two results with different dict
        insertion orders but identical decisions, beliefs, source
        qualities and round counts serialize identically.  This is
        the equality the incremental subsystem's byte-identity
        contract is stated in (``apply_delta`` vs full re-fusion at
        ``tolerance=0``).
        """
        return repr(
            (
                self.method,
                sorted(
                    (item, sorted(values))
                    for item, values in self.truths.items()
                ),
                sorted(self.belief.items()),
                sorted(self.source_quality.items()),
                self.iterations,
                self.converged_at,
            )
        ).encode()


class FusionMethod(abc.ABC):
    """Interface shared by every truth-discovery / fusion method."""

    name: str = "fusion"

    @abc.abstractmethod
    def fuse(self, claims: ClaimSet) -> FusionResult:
        """Resolve conflicts and return decided truths."""

    def _check_nonempty(self, claims: ClaimSet) -> None:
        if len(claims) == 0:
            raise FusionError(f"{self.name}: empty claim set")


def normalize_beliefs(beliefs: dict[str, float]) -> dict[str, float]:
    """Scale a value→belief map so the maximum is 1 (empty-safe)."""
    if not beliefs:
        return {}
    top = max(beliefs.values())
    if top <= 0:
        return {value: 0.0 for value in beliefs}
    return {value: score / top for value, score in beliefs.items()}
