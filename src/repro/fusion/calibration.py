"""Gold-standard calibration of initial source quality.

Dong et al.'s knowledge-fusion adaptation — which the paper builds on —
improves the baselines by "making use of the gold standard to calculate
more accurate initial quality values of the data sources, rather than
simply setting some default values".  This module reproduces that
improvement: given a (small) labelled subset of items, it estimates
per-source accuracy (and sensitivity/specificity) with Laplace
smoothing, producing the ``initial_accuracies`` input of
:class:`repro.fusion.accu.Accu` or priors for
:class:`repro.fusion.multitruth.MultiTruth`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import FusionError
from repro.fusion.base import ClaimSet, Item

TruthOracle = Callable[[Item, str], bool]


@dataclass(frozen=True, slots=True)
class SourceCalibration:
    """Calibrated per-source quality estimates."""

    accuracy: dict[str, float]
    sensitivity: dict[str, float]
    specificity: dict[str, float]
    labeled_items: int


def calibrate_sources(
    claims: ClaimSet,
    oracle: TruthOracle,
    *,
    label_fraction: float = 0.1,
    max_labels: int = 500,
    seed: int = 0,
    smoothing: float = 1.0,
) -> SourceCalibration:
    """Estimate source quality from a labelled sample of items.

    Parameters
    ----------
    oracle:
        ``(item, value_key) -> is that value true?`` — the gold
        standard (in experiments, the ground-truth world).
    label_fraction / max_labels:
        How much gold standard to spend: a random fraction of items,
        capped.  Real deployments label little; the default 10% mirrors
        that.
    smoothing:
        Laplace pseudo-count anchoring sparse sources at 0.5.
    """
    if not 0 < label_fraction <= 1:
        raise FusionError("label_fraction must lie in (0, 1]")
    items = claims.items()
    if not items:
        raise FusionError("cannot calibrate on an empty claim set")
    rng = random.Random(seed)
    sample_size = min(max_labels, max(1, round(len(items) * label_fraction)))
    labeled = set(rng.sample(items, min(sample_size, len(items))))

    correct: dict[str, float] = {}
    total: dict[str, float] = {}
    claimed_true: dict[str, float] = {}
    true_exposures: dict[str, float] = {}
    silent_false: dict[str, float] = {}
    false_exposures: dict[str, float] = {}

    for item in labeled:
        values = claims.values_of(item)
        covering = claims.sources_claiming(item)
        for value, value_claims in values.items():
            truth = oracle(item, value)
            claimers = {claim.source_id for claim in value_claims}
            for source in covering:
                if truth:
                    true_exposures[source] = true_exposures.get(source, 0) + 1
                    if source in claimers:
                        claimed_true[source] = (
                            claimed_true.get(source, 0) + 1
                        )
                else:
                    false_exposures[source] = (
                        false_exposures.get(source, 0) + 1
                    )
                    if source not in claimers:
                        silent_false[source] = (
                            silent_false.get(source, 0) + 1
                        )
            for source in claimers:
                total[source] = total.get(source, 0) + 1
                if truth:
                    correct[source] = correct.get(source, 0) + 1

    def smoothed(numerators: dict, denominators: dict, source: str) -> float:
        return (numerators.get(source, 0) + smoothing * 0.5) / (
            denominators.get(source, 0) + smoothing
        )

    sources = claims.sources()
    return SourceCalibration(
        accuracy={s: smoothed(correct, total, s) for s in sources},
        sensitivity={
            s: smoothed(claimed_true, true_exposures, s) for s in sources
        },
        specificity={
            s: smoothed(silent_false, false_exposures, s) for s in sources
        },
        labeled_items=len(labeled),
    )


def world_oracle(world) -> TruthOracle:
    """A truth oracle backed by a ground-truth world."""
    from repro.evalx.metrics import true_value_keys

    def oracle(item: Item, value: str) -> bool:
        subject, predicate = item
        return value in true_value_keys(world, subject, predicate)

    return oracle


def claim_world_oracle(claim_world) -> TruthOracle:
    """A truth oracle backed by a synthetic claim world."""

    def oracle(item: Item, value: str) -> bool:
        return value in claim_world.expanded_truths(item)

    return oracle
