"""Connected-component sharding of the claim bipartite graph.

Fusion couples an item to its sources and a source to its items —
nothing else.  Two claims therefore interact only when their items and
sources are linked in the bipartite item↔source graph, so each
connected *component* of that graph is an independent fusion problem:
fusing components separately and merging the results is exactly
equivalent to one global run (per-source and per-item statistics never
cross a component boundary, and the float operation order inside one
component is unchanged, so the merged output is byte-identical).

:func:`fuse_sharded` runs the components as reduce groups of the
:mod:`repro.mapreduce` engine, which provides the ``"process"``
executor (real parallelism for CPU-bound fusion) and its determinism
contract (reduce groups processed in sorted key order, results merged
deterministically).  The fusion method rides to the workers inside the
pickled reducer, like the accuracy snapshot in ``mr_accu``.

Caveat: a component that satisfies its convergence tolerance early
exits on its *own* delta, while a global run exits on the maximum
delta across all components — identical truths in practice, but extra
rounds elsewhere can move beliefs by up to the tolerance.  Run with
``tolerance=0`` (fixed iterations) for bit-identical merged output;
the equivalence tests pin both regimes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.errors import FusionError
from repro.faults import FaultPlan
from repro.fusion.base import Claim, ClaimSet, FusionMethod, FusionResult
from repro.mapreduce.engine import EXECUTORS, MapReduceJob, RetryPolicy

__all__ = [
    "ShardStats",
    "shard_claims",
    "fuse_sharded",
    "fuse_sharded_segments",
]


@dataclass(slots=True)
class ShardStats:
    """Per-component accounting of one sharded fusion run."""

    components: int = 0
    workers: int = 1
    executor: str = "serial"
    component_claims: list[int] = field(default_factory=list)
    component_items: list[int] = field(default_factory=list)
    # Fault-tolerance accounting, copied from the underlying job's
    # JobStats when a retry policy or fault plan was active (zero on
    # plain runs).
    attempts: int = 0
    retries: int = 0
    timed_out_tasks: int = 0

    @property
    def largest_claims(self) -> int:
        return max(self.component_claims, default=0)

    @property
    def largest_items(self) -> int:
        return max(self.component_items, default=0)


def _component_map(claims: ClaimSet) -> dict[str, int]:
    """Source id → component id via union-find over the claim graph.

    Component ids are densely numbered in order of first appearance in
    the claim set's iteration order, so the sharding is deterministic.
    """
    parent: dict[object, object] = {}

    def find(node):
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(left, right):
        for node in (left, right):
            if node not in parent:
                parent[node] = node
        left_root, right_root = find(left), find(right)
        if left_root is not right_root:
            parent[right_root] = left_root

    for claim in claims:
        union(("item", claim.item), ("source", claim.source_id))

    component_of_root: dict[object, int] = {}
    mapping: dict[str, int] = {}
    for claim in claims:
        source = claim.source_id
        if source not in mapping:
            root = find(("source", source))
            mapping[source] = component_of_root.setdefault(
                root, len(component_of_root)
            )
    return mapping


def shard_claims(claims: ClaimSet) -> list[ClaimSet]:
    """Split a claim set into its connected components.

    Claims keep their relative order inside each shard, so fusing a
    shard replays the exact float operation order of the global run
    restricted to that component.
    """
    mapping = _component_map(claims)
    shards: dict[int, ClaimSet] = {}
    for claim in claims:
        shards.setdefault(mapping[claim.source_id], ClaimSet()).add(claim)
    return [shards[component] for component in sorted(shards)]


def _shard_mapper(mapping: dict[str, int], claim: Claim):
    yield mapping[claim.source_id], claim


def _shard_reducer(method: FusionMethod, component: int, claims: list[Claim]):
    yield component, len(claims), method.fuse(ClaimSet(claims))


def fuse_sharded(
    method: FusionMethod,
    claims: ClaimSet,
    *,
    workers: int = 1,
    executor: str = "serial",
    partitions: int | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    metrics=None,
) -> tuple[FusionResult, ShardStats]:
    """Fuse each connected component independently and merge.

    Components are the reduce groups of one MapReduce job; with
    ``executor="process"`` they run on worker processes (the method
    must be picklable — every built-in fusion method is).  Merged
    truths/beliefs/source qualities are the disjoint union of the
    component results; ``iterations`` and ``converged_at`` report the
    slowest component (``converged_at`` is None if any component hit
    its iteration cap).  ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) is handed to the underlying
    job, which publishes its ``mapreduce_*`` counters there.
    """
    if executor not in EXECUTORS:
        raise FusionError(
            f"fusion executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if workers < 1:
        raise FusionError("workers must be >= 1")
    if len(claims) == 0:
        raise FusionError(f"{method.name}: empty claim set")

    mapping = _component_map(claims)
    # One map partition: the engine splits partitions round-robin, and
    # more than one would interleave claim order inside each reduce
    # group, shifting float accumulation order at ULP level.  The map
    # side is a trivial tagging pass; all the work is in the reduce
    # groups, which parallelize by component regardless.
    job: MapReduceJob = MapReduceJob(
        functools.partial(_shard_mapper, mapping),
        functools.partial(_shard_reducer, method),
        partitions=partitions or 1,
        executor=executor,
        max_workers=workers,
        retry=retry,
        fault_plan=fault_plan,
        metrics=metrics,
    )
    merged = FusionResult(method.name)
    stats = ShardStats(workers=workers, executor=executor)
    converged: list[int | None] = []
    for _component, n_claims, result in job.run(claims):
        stats.components += 1
        stats.component_claims.append(n_claims)
        stats.component_items.append(len(result.truths))
        merged.truths.update(result.truths)
        merged.belief.update(result.belief)
        merged.source_quality.update(result.source_quality)
        merged.iterations = max(merged.iterations, result.iterations)
        converged.append(result.converged_at)
    if converged and all(round_ is not None for round_ in converged):
        merged.converged_at = max(converged)  # type: ignore[type-var]
    stats.attempts = job.stats.attempts
    stats.retries = job.stats.retries
    stats.timed_out_tasks = job.stats.timed_out_tasks
    return merged, stats


# ----------------------------------------------------------------------
# Zero-copy sharding over a segment-backed store.
# ----------------------------------------------------------------------

# Per-process cache of open segment readers, so a worker re-mmaps a
# segment once per file, not once per reduce task.  Bounded: segments
# are replaced wholesale by compaction, so stale entries only linger
# until eviction.
_READER_CACHE: dict[str, object] = {}
_READER_CACHE_LIMIT = 4


def _cached_reader(path: str):
    from repro.rdf.segments import SegmentReader

    reader = _READER_CACHE.get(path)
    if reader is None:
        while len(_READER_CACHE) >= _READER_CACHE_LIMIT:
            _READER_CACHE.pop(next(iter(_READER_CACHE))).close()
        reader = SegmentReader(path)
        _READER_CACHE[path] = reader
    return reader


def _segment_mapper(record):
    yield record[0], record[1]


def _segment_reducer(method: FusionMethod, path: str, component: int,
                     row_lists):
    reader = _cached_reader(path)
    scored = (
        reader.row_scored(row) for rows in row_lists for row in rows
    )
    claims = ClaimSet.from_scored_triples(scored)
    yield component, len(claims), method.fuse(claims)


def fuse_sharded_segments(
    method: FusionMethod,
    store,
    *,
    workers: int = 1,
    executor: str = "serial",
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    metrics=None,
) -> tuple[FusionResult, ShardStats]:
    """:func:`fuse_sharded` where workers read claims from the segment
    file instead of pickled claim lists.

    ``store`` is a segment-backed :class:`~repro.rdf.store.TripleStore`
    (or the :class:`~repro.rdf.segments.SegmentBackend` itself).  The
    store is compacted to one canonical segment; the parent computes
    the item↔source connected components by streaming the *interned
    id* columns (no claim objects are materialized), then ships each
    reduce task only ``(component, row indexes)`` — workers mmap the
    shared segment and build their component's claims in row order,
    which replays the exact claim iteration the in-memory path sees.
    The merged result is byte-identical to :func:`fuse_sharded` over
    ``ClaimSet.from_scored_triples(store.claims())`` (property-tested).
    """
    from repro.rdf.segments import SegmentBackend
    from repro.rdf.store import TripleStore

    backend = store.backend if isinstance(store, TripleStore) else store
    if not isinstance(backend, SegmentBackend):
        raise FusionError(
            "fuse_sharded_segments needs a segment-backed store, got "
            f"{type(backend).__name__}"
        )
    if executor not in EXECUTORS:
        raise FusionError(
            f"fusion executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if workers < 1:
        raise FusionError("workers must be >= 1")

    backend.compact()
    readers = backend.segment_readers()
    if not readers or len(backend) == 0:
        raise FusionError(f"{method.name}: empty claim set")
    reader = readers[0]
    path = str(backend.segment_paths()[0])

    # Union-find over int nodes: ("item", subject_id, predicate_id)
    # joined to ("source", source_id) per row — the same bipartite
    # graph _component_map builds, minus the string materialization.
    parent: dict[tuple, tuple] = {}

    def find(node):
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:
            parent[node], node = root, parent[node]
        return root

    subjects = reader.col_subject
    predicates = reader.col_predicate
    sources = reader.col_source
    n_rows = reader.n_rows
    for row in range(n_rows):
        item = (0, subjects[row], predicates[row])
        source = (1, sources[row])
        for node in (item, source):
            if node not in parent:
                parent[node] = node
        left, right = find(item), find(source)
        if left is not right:
            parent[right] = left

    # Dense component ids by first appearance in row order — the same
    # numbering _component_map derives from claim iteration order.
    component_of_root: dict[tuple, int] = {}
    component_of_source: dict[int, int] = {}
    rows_of_component: dict[int, list[int]] = {}
    for row in range(n_rows):
        source = sources[row]
        component = component_of_source.get(source)
        if component is None:
            root = find((1, source))
            component = component_of_root.setdefault(
                root, len(component_of_root)
            )
            component_of_source[source] = component
        rows_of_component.setdefault(component, []).append(row)

    job: MapReduceJob = MapReduceJob(
        _segment_mapper,
        functools.partial(_segment_reducer, method, path),
        partitions=1,
        executor=executor,
        max_workers=workers,
        retry=retry,
        fault_plan=fault_plan,
        metrics=metrics,
    )
    merged = FusionResult(method.name)
    stats = ShardStats(workers=workers, executor=executor)
    converged: list[int | None] = []
    for _component, n_claims, result in job.run(
        sorted(rows_of_component.items())
    ):
        stats.components += 1
        stats.component_claims.append(n_claims)
        stats.component_items.append(len(result.truths))
        merged.truths.update(result.truths)
        merged.belief.update(result.belief)
        merged.source_quality.update(result.source_quality)
        merged.iterations = max(merged.iterations, result.iterations)
        converged.append(result.converged_at)
    if converged and all(round_ is not None for round_ in converged):
        merged.converged_at = max(converged)  # type: ignore[type-var]
    stats.attempts = job.stats.attempts
    stats.retries = job.stats.retries
    stats.timed_out_tasks = job.stats.timed_out_tasks
    return merged, stats
