"""Confidence-weighted fact-finding (Pasternack & Roth, IJCAI'11).

The paper plans to "leverage the confidence scores calculated from the
first phase" the way generalized fact-finding leverages source-supplied
confidence (Sec. 3.2, bullet 4).  Two generalized fact-finders are
implemented; both iterate source trust against claim belief, with every
claim weighted by its extraction confidence:

* **GeneralizedSums** (generalized Hubs & Authorities): belief of a
  value is the confidence-weighted sum of the trust of its claimants;
  trust of a source is the average belief of its claims.
* **Investment**: sources "invest" their trust across their claims
  proportionally to claim confidence; beliefs grow by a convex function
  of invested credit, and sources earn back trust proportionally to
  their share of each claim's belief — rewarding sources that back
  well-corroborated values early.
"""

from __future__ import annotations

from repro.errors import FusionError
from repro.fusion.base import (
    ClaimSet,
    FusionMethod,
    FusionResult,
    Item,
    normalize_beliefs,
)


class GeneralizedSums(FusionMethod):
    """Confidence-weighted Sums (Hubs & Authorities) fact-finder."""

    name = "gensums"

    def __init__(
        self,
        *,
        max_iterations: int = 20,
        tolerance: float = 1e-6,
        use_confidence: bool = True,
        compiled: bool = True,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.use_confidence = use_confidence
        self.compiled = compiled

    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        if self.compiled:
            from repro.fusion.compiled import compile_claims, gensums_fuse

            return gensums_fuse(
                compile_claims(claims),
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                use_confidence=self.use_confidence,
                name=self.name,
            )
        trust = {source: 1.0 for source in claims.sources()}
        belief: dict[tuple[Item, str], float] = {}
        iterations = 0
        converged_at = None
        for iterations in range(1, self.max_iterations + 1):
            belief = {}
            for item in claims.items():
                scores: dict[str, float] = {}
                for value, value_claims in claims.values_of(item).items():
                    scores[value] = sum(
                        trust[claim.source_id]
                        * (claim.confidence if self.use_confidence else 1.0)
                        for claim in value_claims
                    )
                for value, score in normalize_beliefs(scores).items():
                    belief[(item, value)] = score
            new_trust: dict[str, float] = {}
            counts: dict[str, int] = {}
            for claim in claims:
                weight = claim.confidence if self.use_confidence else 1.0
                new_trust[claim.source_id] = new_trust.get(
                    claim.source_id, 0.0
                ) + weight * belief[(claim.item, claim.value)]
                counts[claim.source_id] = counts.get(claim.source_id, 0) + 1
            top = max(new_trust.values()) or 1.0
            new_trust = {
                source: value / top for source, value in new_trust.items()
            }
            delta = max(
                abs(new_trust[source] - trust[source]) for source in trust
            )
            trust = new_trust
            if delta < self.tolerance:
                converged_at = iterations
                break

        result = FusionResult(self.name)
        result.iterations = iterations
        result.converged_at = converged_at
        result.belief = belief
        result.source_quality = trust
        for item in claims.items():
            values = claims.values_of(item)
            winner = min(
                values, key=lambda value: (-belief[(item, value)], value)
            )
            result.truths[item] = {winner}
        return result


class Investment(FusionMethod):
    """Confidence-weighted Investment fact-finder."""

    name = "investment"

    def __init__(
        self,
        *,
        growth: float = 1.2,
        max_iterations: int = 20,
        tolerance: float = 1e-6,
        use_confidence: bool = True,
        compiled: bool = True,
    ) -> None:
        if growth <= 0:
            raise FusionError("growth must be positive")
        self.growth = growth
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.use_confidence = use_confidence
        self.compiled = compiled

    def fuse(self, claims: ClaimSet) -> FusionResult:
        self._check_nonempty(claims)
        if self.compiled:
            from repro.fusion.compiled import compile_claims, investment_fuse

            return investment_fuse(
                compile_claims(claims),
                growth=self.growth,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                use_confidence=self.use_confidence,
                name=self.name,
            )
        trust = {source: 1.0 for source in claims.sources()}
        # Per-source total claim weight (for proportional investment).
        totals: dict[str, float] = {}
        for claim in claims:
            weight = claim.confidence if self.use_confidence else 1.0
            totals[claim.source_id] = totals.get(claim.source_id, 0.0) + weight

        belief: dict[tuple[Item, str], float] = {}
        iterations = 0
        converged_at = None
        for iterations in range(1, self.max_iterations + 1):
            invested: dict[tuple[Item, str], float] = {}
            stake: dict[tuple[str, tuple[Item, str]], float] = {}
            for claim in claims:
                weight = claim.confidence if self.use_confidence else 1.0
                share = weight / totals[claim.source_id]
                credit = trust[claim.source_id] * share
                key = (claim.item, claim.value)
                invested[key] = invested.get(key, 0.0) + credit
                stake[(claim.source_id, key)] = (
                    stake.get((claim.source_id, key), 0.0) + credit
                )
            belief = {key: value**self.growth for key, value in invested.items()}
            # Normalise beliefs within each item.
            per_item: dict[Item, dict[str, float]] = {}
            for (item, value), score in belief.items():
                per_item.setdefault(item, {})[value] = score
            belief = {}
            for item, scores in per_item.items():
                for value, score in normalize_beliefs(scores).items():
                    belief[(item, value)] = score
            new_trust: dict[str, float] = {source: 0.0 for source in trust}
            for (source, key), credit in stake.items():
                if invested[key] > 0:
                    new_trust[source] += belief[key] * credit / invested[key]
            top = max(new_trust.values()) or 1.0
            new_trust = {
                source: value / top for source, value in new_trust.items()
            }
            delta = max(
                abs(new_trust[source] - trust[source]) for source in trust
            )
            trust = new_trust
            if delta < self.tolerance:
                converged_at = iterations
                break

        result = FusionResult(self.name)
        result.iterations = iterations
        result.converged_at = converged_at
        result.belief = belief
        result.source_quality = trust
        for item in claims.items():
            values = claims.values_of(item)
            winner = min(
                values,
                key=lambda value: (-belief.get((item, value), 0.0), value),
            )
            result.truths[item] = {winner}
        return result
