"""Knowledge fusion: truth discovery over multi-source, multi-extractor
claims — baselines (VOTE/ACCU/POPACCU), multi-truth Bayesian fusion,
hierarchy reasoning, correlation discounts, confidence weighting, and
the paper's combined method."""

from repro.fusion.accu import Accu, PopAccu
from repro.fusion.calibration import (
    SourceCalibration,
    calibrate_sources,
    claim_world_oracle,
    world_oracle,
)
from repro.fusion.base import (
    Claim,
    ClaimSet,
    ClaimSetStats,
    FusionMethod,
    FusionResult,
    value_key,
)
from repro.fusion.compiled import CompiledClaims, compile_claims
from repro.fusion.confidence_weighted import GeneralizedSums, Investment
from repro.fusion.functionality import (
    FunctionalityEstimate,
    FunctionalityEstimator,
    functional_oracle_from_claims,
)
from repro.fusion.correlations import CorrelationEstimate, CorrelationEstimator
from repro.fusion.hierarchy import CasefoldHierarchy, HierarchicalFusion
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.fusion.multitruth import MultiTruth
from repro.fusion.sharding import ShardStats, fuse_sharded, shard_claims
from repro.fusion.vote import Vote

__all__ = [
    "Accu",
    "CasefoldHierarchy",
    "Claim",
    "ClaimSet",
    "ClaimSetStats",
    "CompiledClaims",
    "CorrelationEstimate",
    "CorrelationEstimator",
    "FunctionalityEstimate",
    "FunctionalityEstimator",
    "FusionMethod",
    "FusionResult",
    "GeneralizedSums",
    "HierarchicalFusion",
    "Investment",
    "KnowledgeFusion",
    "MultiTruth",
    "PopAccu",
    "ShardStats",
    "SourceCalibration",
    "Vote",
    "calibrate_sources",
    "compile_claims",
    "functional_oracle_from_claims",
    "fuse_sharded",
    "claim_world_oracle",
    "shard_claims",
    "world_oracle",
    "value_key",
]
