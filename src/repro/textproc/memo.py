"""Bounded memoization for hot-path similarity functions.

Attribute resolution and DOM extraction recompute the same pairwise
similarities thousands of times: the resolver compares every attribute
variant against every accepted canonical name, and Algorithm 1 scores
every candidate label's tag path against every induced pattern — with
the same paths recurring across pages that share a layout.  All of the
underlying functions are pure, so a memo table turns the quadratic
recomputation into dictionary lookups.

The cache layer here is deliberately boring:

* **bounded** — each cache holds at most ``max_size`` entries and
  evicts in insertion (FIFO) order, so memory use cannot grow without
  limit on adversarial inputs;
* **observable** — every cache counts hits, misses and evictions;
  :func:`similarity_cache_stats` snapshots them (the numbers feed
  ``BENCH_parallel.json``);
* **transparent** — scores are identical with caching on or off
  (tested), and :func:`configure_similarity_caches` can disable the
  layer globally for debugging or measurement.

Caches are per-process: worker processes spawned by the parallel
execution layer each warm their own table, which is exactly the
behaviour a distributed deployment would have.
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from dataclasses import dataclass

DEFAULT_MAX_SIZE = 65_536

_ENABLED = True


@dataclass(slots=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": round(self.hit_rate, 4),
        }


class BoundedCache:
    """A FIFO-bounded memo table with hit/miss/eviction counters.

    FIFO (rather than LRU) keeps the hot path to two dict operations;
    for the pairwise-similarity workloads here the working set either
    fits entirely (typical) or churns regardless of policy.
    """

    __slots__ = ("name", "max_size", "hits", "misses", "evictions", "_table")

    def __init__(self, name: str, max_size: int = DEFAULT_MAX_SIZE) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.name = name
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key):
        """The cached value, or ``_MISS`` when absent."""
        value = self._table.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key, value) -> None:
        if key in self._table:
            return
        if len(self._table) >= self.max_size:
            self._table.pop(next(iter(self._table)))
            self.evictions += 1
        self._table[key] = value

    def clear(self) -> None:
        self._table.clear()

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            name=self.name,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._table),
            max_size=self.max_size,
        )


class _Miss:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache miss>"


_MISS = _Miss()

# Registry of every memoized similarity function's cache, by name.
_REGISTRY: dict[str, BoundedCache] = {}


def memoized_pair(
    name: str,
    *,
    max_size: int = DEFAULT_MAX_SIZE,
    symmetric: bool = True,
) -> Callable:
    """Decorate a pure two-argument similarity function with a cache.

    ``symmetric=True`` canonicalises the key order (``f(a, b) ==
    f(b, a)``), doubling the hit rate of pairwise loops; it requires
    the arguments to be orderable.  Extra positional and keyword
    arguments participate in the key, so variants like
    ``levenshtein(..., limit=2)`` never collide with the unlimited
    computation.
    """
    cache = BoundedCache(name, max_size)
    _REGISTRY[name] = cache

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(left, right, *args, **kwargs):
            if not _ENABLED:
                return fn(left, right, *args, **kwargs)
            if symmetric and right < left:
                key_pair = (right, left)
            else:
                key_pair = (left, right)
            key = key_pair
            if args:
                key = key + args
            if kwargs:
                key = key + tuple(sorted(kwargs.items()))
            value = cache.lookup(key)
            if value is _MISS:
                value = fn(left, right, *args, **kwargs)
                cache.store(key, value)
            return value

        wrapper.cache = cache
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def configure_similarity_caches(
    *, enabled: bool | None = None, max_size: int | None = None
) -> None:
    """Globally enable/disable the cache layer and/or resize every cache.

    Resizing clears the tables (entries beyond the new bound would
    otherwise linger); toggling does not.
    """
    global _ENABLED
    if enabled is not None:
        _ENABLED = enabled
    if max_size is not None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        for cache in _REGISTRY.values():
            cache.max_size = max_size
            cache.clear()


def similarity_caches_enabled() -> bool:
    return _ENABLED


def similarity_cache_stats() -> dict[str, CacheStats]:
    """Name → counter snapshot for every registered cache."""
    return {name: cache.stats() for name, cache in _REGISTRY.items()}


def clear_similarity_caches(*, reset_counters: bool = True) -> None:
    """Empty every cache (and by default zero its counters)."""
    for cache in _REGISTRY.values():
        cache.clear()
        if reset_counters:
            cache.reset_counters()


def publish_cache_metrics(registry) -> None:
    """Bridge every cache's counters into a metrics registry.

    Counter handles are incremented by the absolute cache totals, so
    this must run once per pipeline run against a fresh registry (the
    pipeline clears the caches at run start and publishes at run end).
    ``registry`` is a :class:`repro.obs.MetricsRegistry`; it is passed
    in rather than imported so textproc keeps no obs dependency.
    """
    for name in sorted(_REGISTRY):
        stats = _REGISTRY[name].stats()
        registry.counter("simcache_hits_total", cache=name).inc(stats.hits)
        registry.counter(
            "simcache_misses_total", cache=name
        ).inc(stats.misses)
        registry.counter(
            "simcache_evictions_total", cache=name
        ).inc(stats.evictions)
        registry.gauge("simcache_size", cache=name).set(stats.size)
