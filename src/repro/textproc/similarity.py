"""String similarity measures used across the library.

Entity linking, attribute synonym resolution and misspelling detection
all need cheap, dependency-free string similarity.  Implemented here:
Levenshtein distance (with a band-optimised early exit), Jaro and
Jaro-Winkler similarity, token Jaccard, and a combined name similarity
used by record linkage.

The comparison functions are pure, and the hot paths (attribute
resolution, entity linking) call them with heavily repeating argument
pairs, so each is memoized through the bounded cache layer in
:mod:`repro.textproc.memo`.  Scores are identical with caching on or
off; ``configure_similarity_caches(enabled=False)`` bypasses the
tables entirely.
"""

from __future__ import annotations

from repro.textproc.memo import memoized_pair


def levenshtein(left: str, right: str, *, limit: int | None = None) -> int:
    """Edit distance between two strings.

    When ``limit`` is given and the true distance exceeds it, any value
    greater than ``limit`` may be returned (callers only compare against
    the limit), which lets the DP exit early.

    The O(1) outcomes are answered directly; only pairs that reach the
    dynamic program go through the memo table, so the cache layer never
    slows down the trivial calls that dominate tight loops.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if limit is not None and abs(len(left) - len(right)) > limit:
        return limit + 1
    return _levenshtein_dp(left, right, limit)


@memoized_pair("levenshtein", max_size=262_144)
def _levenshtein_dp(left: str, right: str, limit: int | None) -> int:
    """The cached dynamic-programming core of :func:`levenshtein`."""
    if limit is not None and limit <= 3:
        return _banded_levenshtein(left, right, limit)
    previous = list(range(len(right) + 1))
    for row, char_left in enumerate(left, start=1):
        current = [row] + [0] * len(right)
        best = row
        for col, char_right in enumerate(right, start=1):
            substitution = previous[col - 1] + (char_left != char_right)
            current[col] = min(
                previous[col] + 1, current[col - 1] + 1, substitution
            )
            best = min(best, current[col])
        if limit is not None and best > limit:
            return limit + 1
        previous = current
    return previous[-1]


def _banded_levenshtein(left: str, right: str, limit: int) -> int:
    """DP restricted to the ``|i-j| <= limit`` band; exact within the
    limit, returns ``limit + 1`` beyond it."""
    width = len(right)
    big = limit + 1
    previous = [col if col <= limit else big for col in range(width + 1)]
    for row in range(1, len(left) + 1):
        char_left = left[row - 1]
        current = [big] * (width + 1)
        if row <= limit:
            current[0] = row
        low = max(1, row - limit)
        high = min(width, row + limit)
        best = big
        for col in range(low, high + 1):
            cost = previous[col - 1] + (char_left != right[col - 1])
            deletion = previous[col] + 1
            insertion = current[col - 1] + 1
            value = cost
            if deletion < value:
                value = deletion
            if insertion < value:
                value = insertion
            if value > big:
                value = big
            current[col] = value
            if value < best:
                best = value
        if best > limit:
            return big
        previous = current
    return previous[width] if previous[width] <= limit else big


def levenshtein_similarity(left: str, right: str) -> float:
    """``1 - distance / max(len)`` in ``[0, 1]``; empty == empty is 1."""
    if not left and not right:
        return 1.0
    return 1.0 - levenshtein(left, right) / max(len(left), len(right))


def jaro(left: str, right: str) -> float:
    """Jaro similarity in ``[0, 1]``."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


@memoized_pair("jaro-winkler")
def jaro_winkler(left: str, right: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity, boosting shared prefixes (≤ 4 chars)."""
    base = jaro(left, right)
    prefix = 0
    for char_left, char_right in zip(left[:4], right[:4]):
        if char_left != char_right:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


@memoized_pair("token-jaccard")
def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity of lower-cased token sets."""
    return token_set_jaccard(
        set(left.lower().split()), set(right.lower().split())
    )


def token_set_jaccard(tokens_left, tokens_right) -> float:
    """Jaccard of two pre-tokenised sets (both empty counts as 1.0).

    The set-level core of :func:`token_jaccard`, exposed so hot paths
    that hold precomputed token sets (the entity layer's surface
    forms) can score without re-splitting the strings on every call.
    """
    if not tokens_left and not tokens_right:
        return 1.0
    if not tokens_left or not tokens_right:
        return 0.0
    overlap = len(tokens_left & tokens_right)
    return overlap / (len(tokens_left) + len(tokens_right) - overlap)


@memoized_pair("name-similarity")
def name_similarity(left: str, right: str) -> float:
    """Combined similarity for entity/attribute names in ``[0, 1]``.

    Takes the stronger of two complementary signals: character-level
    Jaro-Winkler (captures misspelling closeness, "Adelade" ~
    "Adelaide") and token Jaccard (captures word reordering,
    "University of Adelaide" ~ "Adelaide University").  Either signal
    alone can be near zero for a pair the other recognises, so the max
    is the right combiner.
    """
    left_norm = left.lower().strip()
    right_norm = right.lower().strip()
    if left_norm == right_norm:
        return 1.0
    return max(
        jaro_winkler(left_norm, right_norm),
        token_jaccard(left_norm, right_norm),
    )
