"""Sentence splitting for Web text documents.

Rule-based splitting on ``. ! ?`` with protection for common
abbreviations and initials; sufficient for the generated Web-text
corpus and for realistic prose.
"""

from __future__ import annotations

_ABBREVIATIONS = frozenset(
    {
        "mr", "mrs", "ms", "dr", "prof", "st", "vs", "etc", "inc",
        "ltd", "co", "jr", "sr", "no", "vol", "dept", "univ", "approx",
        "e.g", "i.e",
    }
)

_TERMINATORS = ".!?"


def split_sentences(text: str) -> list[str]:
    """Split prose into sentences.

    >>> split_sentences("It rains. Dr. Smith stays home! Why?")
    ['It rains.', 'Dr. Smith stays home!', 'Why?']
    """
    sentences: list[str] = []
    start = 0
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char in _TERMINATORS and _is_boundary(text, index):
            sentence = text[start : index + 1].strip()
            if sentence:
                sentences.append(sentence)
            start = index + 1
        index += 1
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences


def _is_boundary(text: str, index: int) -> bool:
    """Is the terminator at ``index`` a true sentence boundary?"""
    # Must be followed by whitespace+capital/digit or end of text.
    after = index + 1
    while after < len(text) and text[after] in "\"')]":
        after += 1
    if after >= len(text):
        return True
    if not text[after].isspace():
        return False
    follow = after
    while follow < len(text) and text[follow].isspace():
        follow += 1
    if follow < len(text) and text[follow].islower():
        return False
    if text[index] != ".":
        return True
    # Check for abbreviations and initials before a period.
    word_start = index
    while word_start > 0 and (
        text[word_start - 1].isalpha() or text[word_start - 1] == "."
    ):
        word_start -= 1
    word = text[word_start:index].lower().rstrip(".")
    if word in _ABBREVIATIONS:
        return False
    if len(word) == 1 and word.isalpha():  # single initial, "J. Smith"
        return False
    return True
