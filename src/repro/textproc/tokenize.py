"""Word tokenization for Web text and query records.

A rule-based tokenizer good enough for pattern matching over English
queries and sentences: it splits on whitespace, separates trailing
punctuation, keeps possessive ``'s`` as its own token (the query
pattern "E's A" needs it), and preserves internal hyphens and numbers.
"""

from __future__ import annotations

_PUNCTUATION = ".,;:!?\"()[]{}"


def tokenize_words(text: str) -> list[str]:
    """Split text into word tokens.

    >>> tokenize_words("What is the capital of France?")
    ['What', 'is', 'the', 'capital', 'of', 'France', '?']
    >>> tokenize_words("Australia's population")
    ['Australia', "'s", 'population']
    """
    tokens: list[str] = []
    for raw in text.split():
        tokens.extend(_split_token(raw))
    return tokens


def _split_token(raw: str) -> list[str]:
    """Split one whitespace-delimited chunk into tokens."""
    prefix: list[str] = []
    suffix: list[str] = []
    while raw and raw[0] in _PUNCTUATION:
        prefix.append(raw[0])
        raw = raw[1:]
    while raw and raw[-1] in _PUNCTUATION:
        suffix.append(raw[-1])
        raw = raw[:-1]
    suffix.reverse()
    parts: list[str] = []
    if raw:
        lowered = raw.lower()
        if lowered.endswith("'s") and len(raw) > 2:
            parts = [raw[:-2], raw[-2:]]
        elif lowered.endswith("s'") and len(raw) > 2:
            parts = [raw[:-1], raw[-1]]
        else:
            parts = [raw]
    return prefix + parts + suffix


def normalize_token(token: str) -> str:
    """Lower-case a token for case-insensitive comparison."""
    return token.lower()


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into a readable string.

    Punctuation and possessive markers attach to the preceding token.
    """
    parts: list[str] = []
    for token in tokens:
        if parts and (token in _PUNCTUATION or token in ("'s", "'")):
            parts[-1] += token
        else:
            parts.append(token)
    return " ".join(parts)
