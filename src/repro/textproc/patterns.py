"""A lexical-pattern engine over token sequences.

The query-stream extractor matches hand-written patterns such as
``"what/how/when/who is the A of (the/a/an) E"`` (Sec. 4); the Web-text
extractor *learns* patterns from sentences that realise a known seed
fact.  Both are served by :class:`LexicalPattern`, a small
token-sequence pattern language:

* ``word`` — literal token (case-insensitive);
* ``what|how|when`` — required alternation of literals;
* ``[the|a|an]`` — optional alternation (matches zero or one token);
* ``<E>`` — a named slot capturing 1..``max_slot_tokens`` tokens.

Matching is a back-tracking scan over the token list; slots are
non-greedy.  The engine is deliberately regular-expression-free so slot
semantics (token counts, per-slot validators) stay explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ParseError
from repro.textproc.tokenize import tokenize_words

SlotValidator = Callable[[list[str]], bool]


@dataclass(frozen=True, slots=True)
class PatternElement:
    """One element of a pattern: literal alternation or named slot."""

    kind: str  # "literal", "optional", "slot"
    words: tuple[str, ...] = ()  # for literal/optional alternations
    slot: str = ""  # for slots


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """A successful match: slot bindings plus the matched token span."""

    bindings: dict[str, list[str]]
    start: int
    end: int

    def text(self, slot: str) -> str:
        """The surface text bound to a slot."""
        return " ".join(self.bindings[slot])


class LexicalPattern:
    """A compiled token-sequence pattern.

    Parameters
    ----------
    source:
        The pattern expression (see module docstring).
    max_slot_tokens:
        Maximum number of tokens one slot may capture.
    validators:
        Optional per-slot predicates; a candidate binding failing its
        validator forces backtracking.
    """

    def __init__(
        self,
        source: str,
        *,
        max_slot_tokens: int = 6,
        validators: dict[str, SlotValidator] | None = None,
    ) -> None:
        if max_slot_tokens < 1:
            raise ParseError("max_slot_tokens must be >= 1")
        self.source = source
        self.max_slot_tokens = max_slot_tokens
        self.validators = dict(validators or {})
        self.elements = _compile(source)
        slots = [el.slot for el in self.elements if el.kind == "slot"]
        if len(slots) != len(set(slots)):
            raise ParseError(f"duplicate slot names in pattern {source!r}")
        self.slot_names: tuple[str, ...] = tuple(slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LexicalPattern({self.source!r})"

    # ------------------------------------------------------------------
    def match_tokens(
        self, tokens: Sequence[str], *, anchored: bool = False
    ) -> list[PatternMatch]:
        """All non-overlapping matches against a token sequence.

        With ``anchored=True`` the pattern must consume the entire
        sequence (used for query records, which are short); otherwise
        the pattern is scanned across the sequence.
        """
        lowered = [token.lower() for token in tokens]
        matches: list[PatternMatch] = []
        start = 0
        while start <= len(tokens) - 1 or (not tokens and start == 0):
            found = self._match_at(tokens, lowered, start, anchored)
            if found is not None:
                matches.append(found)
                start = max(found.end, start + 1)
            else:
                start += 1
            if anchored:
                break
        return matches

    def match_text(self, text: str, *, anchored: bool = False) -> list[PatternMatch]:
        """Tokenize ``text`` and match."""
        return self.match_tokens(tokenize_words(text), anchored=anchored)

    # ------------------------------------------------------------------
    def _match_at(
        self,
        tokens: Sequence[str],
        lowered: Sequence[str],
        start: int,
        anchored: bool,
    ) -> PatternMatch | None:
        bindings: dict[str, list[str]] = {}

        def recurse(element_index: int, token_index: int) -> int | None:
            """Try to match elements[element_index:]; returns end index."""
            if element_index == len(self.elements):
                if anchored and token_index != len(tokens):
                    return None
                return token_index
            element = self.elements[element_index]
            if element.kind == "literal":
                if (
                    token_index < len(tokens)
                    and lowered[token_index] in element.words
                ):
                    return recurse(element_index + 1, token_index + 1)
                return None
            if element.kind == "optional":
                if (
                    token_index < len(tokens)
                    and lowered[token_index] in element.words
                ):
                    end = recurse(element_index + 1, token_index + 1)
                    if end is not None:
                        return end
                return recurse(element_index + 1, token_index)
            # Slot: try lengths non-greedily.
            validator = self.validators.get(element.slot)
            for length in range(1, self.max_slot_tokens + 1):
                if token_index + length > len(tokens):
                    break
                candidate = list(tokens[token_index : token_index + length])
                if any(_is_boundary_token(tok) for tok in candidate):
                    break
                if validator is not None and not validator(candidate):
                    continue
                bindings[element.slot] = candidate
                end = recurse(element_index + 1, token_index + length)
                if end is not None:
                    return end
            bindings.pop(element.slot, None)
            return None

        end = recurse(0, start)
        if end is None:
            return None
        return PatternMatch(dict(bindings), start, end)


def _is_boundary_token(token: str) -> bool:
    """Tokens a slot may never span (punctuation)."""
    return token in {".", ",", ";", ":", "!", "?", "(", ")", "[", "]"}


def _compile(source: str) -> tuple[PatternElement, ...]:
    """Compile a pattern expression into elements."""
    elements: list[PatternElement] = []
    for chunk in source.split():
        if chunk.startswith("<") and chunk.endswith(">"):
            name = chunk[1:-1].strip()
            if not name:
                raise ParseError(f"empty slot in pattern {source!r}")
            elements.append(PatternElement("slot", slot=name))
        elif chunk.startswith("[") and chunk.endswith("]"):
            words = tuple(
                word.strip().lower()
                for word in chunk[1:-1].split("|")
                if word.strip()
            )
            if not words:
                raise ParseError(f"empty optional group in pattern {source!r}")
            elements.append(PatternElement("optional", words=words))
        else:
            words = tuple(
                word.strip().lower()
                for word in chunk.split("|")
                if word.strip()
            )
            if not words:
                raise ParseError(f"empty literal in pattern {source!r}")
            elements.append(PatternElement("literal", words=words))
    if not elements:
        raise ParseError("pattern must contain at least one element")
    return tuple(elements)


def induce_pattern(
    tokens: Sequence[str],
    spans: dict[str, tuple[int, int]],
    *,
    max_slot_tokens: int = 6,
) -> LexicalPattern | None:
    """Generalise a token sequence into a pattern.

    ``spans`` maps slot names to half-open token ranges that should be
    abstracted into slots (e.g. where the entity, attribute and value of
    a seed fact occur).  Overlapping spans, or spans out of range,
    return ``None`` — the sentence cannot be generalised.
    """
    ordered = sorted(spans.items(), key=lambda item: item[1][0])
    previous_end = 0
    parts: list[str] = []
    for name, (start, end) in ordered:
        if start < previous_end or end <= start or end > len(tokens):
            return None
        parts.extend(_escape_literal(tok) for tok in tokens[previous_end:start])
        parts.append(f"<{name}>")
        previous_end = end
    parts.extend(_escape_literal(tok) for tok in tokens[previous_end:])
    source = " ".join(part for part in parts if part)
    if "<" not in source:
        return None
    try:
        return LexicalPattern(source, max_slot_tokens=max_slot_tokens)
    except ParseError:
        return None


def _escape_literal(token: str) -> str:
    """Render one token as a literal pattern element (drop specials)."""
    cleaned = token.strip()
    if not cleaned or any(ch in cleaned for ch in "<>[]|"):
        return ""
    return cleaned.lower()


def match_any(
    patterns: Iterable[LexicalPattern],
    tokens: Sequence[str],
    *,
    anchored: bool = False,
) -> list[tuple[LexicalPattern, PatternMatch]]:
    """Match a token sequence against many patterns; collect all hits."""
    hits: list[tuple[LexicalPattern, PatternMatch]] = []
    for pattern in patterns:
        for match in pattern.match_tokens(tokens, anchored=anchored):
            hits.append((pattern, match))
    return hits
