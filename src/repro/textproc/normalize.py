"""Surface-form normalisation: case, punctuation, plurals, misspellings.

The fusion phase must identify "misspellings, synonyms, and
sub-attributes" (Sec. 3); this module supplies the deterministic
normalisation layer those detectors build on.
"""

from __future__ import annotations

import re

from repro.textproc.similarity import levenshtein

_WHITESPACE = re.compile(r"\s+")
_NON_WORD_EDGE = re.compile(r"^\W+|\W+$")

# Irregular plural → singular forms worth handling explicitly.
_IRREGULAR_SINGULARS = {
    "children": "child",
    "people": "person",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "criteria": "criterion",
    "phenomena": "phenomenon",
    "series": "series",
    "species": "species",
}


def normalize_name(name: str) -> str:
    """Canonicalise a name: trim, collapse whitespace, lower-case."""
    cleaned = _NON_WORD_EDGE.sub("", name.strip())
    return _WHITESPACE.sub(" ", cleaned).lower()


def singularize(word: str) -> str:
    """Best-effort singular form of one word (rule-based)."""
    lowered = word.lower()
    if lowered in _IRREGULAR_SINGULARS:
        return _IRREGULAR_SINGULARS[lowered]
    if lowered.endswith("ies") and len(lowered) > 3:
        return lowered[:-3] + "y"
    if lowered.endswith(("ches", "shes", "xes", "sses", "zes")):
        return lowered[:-2]
    if lowered.endswith("oes") and len(lowered) > 3:
        return lowered[:-2]
    if (
        len(lowered) > 2
        and lowered.endswith("s")
        and not lowered.endswith(("ss", "us", "is"))
    ):
        return lowered[:-1]
    return lowered


def normalize_attribute(name: str) -> str:
    """Canonical attribute key: normalised, underscores/hyphens folded,
    final word singularised (``"Birth-Places" -> "birth place"``).

    The final word keeps its plural inside an ``of`` construction
    ("number of pages"), where the plural is part of the meaning rather
    than morphological variation.
    """
    cleaned = normalize_name(name.replace("_", " ").replace("-", " "))
    if not cleaned:
        return cleaned
    words = cleaned.split(" ")
    if "of" not in words[:-1]:
        words[-1] = singularize(words[-1])
    return " ".join(words)


def is_probable_misspelling(
    left: str, right: str, *, normalized: bool = False
) -> bool:
    """Are two normalised names likely the same word misspelled?

    True when the edit distance is small relative to length (1 for
    short strings, 2 for longer ones) but the strings differ.  Pass
    ``normalized=True`` when both inputs are already canonical (hot
    loops skip re-normalisation).
    """
    if normalized:
        left_norm, right_norm = left, right
    else:
        left_norm = normalize_name(left)
        right_norm = normalize_name(right)
    if left_norm == right_norm or not left_norm or not right_norm:
        return False
    max_len = max(len(left_norm), len(right_norm))
    allowed = 1 if max_len <= 6 else 2
    if abs(len(left_norm) - len(right_norm)) > allowed:
        return False
    return levenshtein(left_norm, right_norm, limit=allowed) <= allowed


def canonical_key(name: str) -> str:
    """A collision-tolerant key used to group misspelled duplicates.

    Removes vowels after the first character of each word, which maps
    common vowel-level misspellings to the same key while keeping
    distinct words apart.
    """
    words = normalize_attribute(name).split(" ")
    keyed = []
    for word in words:
        if not word:
            continue
        head, rest = word[0], word[1:]
        keyed.append(head + "".join(ch for ch in rest if ch not in "aeiou"))
    return " ".join(keyed)
