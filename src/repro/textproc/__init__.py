"""Text substrate: tokenization, sentences, similarity, normalisation,
and the lexical-pattern engine."""

from repro.textproc.memo import (
    CacheStats,
    clear_similarity_caches,
    configure_similarity_caches,
    publish_cache_metrics,
    similarity_cache_stats,
    similarity_caches_enabled,
)
from repro.textproc.normalize import (
    canonical_key,
    is_probable_misspelling,
    normalize_attribute,
    normalize_name,
    singularize,
)
from repro.textproc.patterns import (
    LexicalPattern,
    PatternMatch,
    induce_pattern,
    match_any,
)
from repro.textproc.sentences import split_sentences
from repro.textproc.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    name_similarity,
    token_jaccard,
    token_set_jaccard,
)
from repro.textproc.tokenize import detokenize, normalize_token, tokenize_words

__all__ = [
    "CacheStats",
    "LexicalPattern",
    "PatternMatch",
    "canonical_key",
    "clear_similarity_caches",
    "configure_similarity_caches",
    "similarity_cache_stats",
    "similarity_caches_enabled",
    "detokenize",
    "induce_pattern",
    "is_probable_misspelling",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "match_any",
    "name_similarity",
    "normalize_attribute",
    "normalize_name",
    "normalize_token",
    "publish_cache_metrics",
    "singularize",
    "split_sentences",
    "token_jaccard",
    "token_set_jaccard",
    "tokenize_words",
]
