"""Observability substrate: metrics registry + span tracing.

* :mod:`repro.obs.metrics` — counters/gauges/histograms with picklable,
  mergeable snapshots (worker-local registries fold into the parent
  the way MapReduce ``JobStats`` do);
* :mod:`repro.obs.trace` — nested wall-clock spans exportable as a
  JSON trace tree;
* :mod:`repro.obs.schema` — validators for the exported JSON documents
  (``python -m repro.obs.schema --metrics m.json --trace t.json``).

The pipeline instruments every layer into one registry/tracer pair and
surfaces the result as ``PipelineReport.metrics`` / ``.trace`` and the
CLI's ``--metrics-out`` / ``--trace-out``.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    HistogramSnapshot,
    LabeledRegistry,
    MetricsRegistry,
    MetricsSnapshot,
    is_timing_metric,
)
from repro.obs.schema import (
    validate_metrics,
    validate_tenant_metrics,
    validate_trace,
)
from repro.obs.trace import Span, SpanTracer

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "HistogramSnapshot",
    "LabeledRegistry",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanTracer",
    "is_timing_metric",
    "validate_metrics",
    "validate_tenant_metrics",
    "validate_trace",
]
