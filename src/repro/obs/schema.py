"""Schema validation for the exported metrics / trace JSON.

The documented shapes (also in README's Observability section):

Metrics (``--metrics-out``)::

    {
      "counters":   {"<name>[{k=v,...}]": number, ...},
      "gauges":     {"<name>[{k=v,...}]": number, ...},
      "histograms": {
        "<name>[{k=v,...}]": {
          "bounds": [number, ...],          # sorted upper bounds
          "counts": [int, ...],             # len(bounds) + 1 (+inf slot)
          "count":  int,                    # == sum(counts)
          "sum":    number
        }, ...
      }
    }

Trace (``--trace-out``)::

    {
      "seconds": number,
      "spans": [
        {"name": str, "start": number, "seconds": number,
         "detail": str, "status": "ok"|"failed",
         "children": [<span>, ...]},
        ...
      ]
    }

Validators return a list of human-readable problems (empty == valid)
so CI can print every violation at once.  Runnable as a module::

    python -m repro.obs.schema --metrics metrics.json --trace trace.json
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from collections.abc import Sequence

__all__ = [
    "validate_metrics",
    "validate_tenant_metrics",
    "validate_trace",
    "main",
]

SPAN_STATUSES = ("ok", "failed")

# Metric families that are per-tenant by construction: in a
# multi-tenant snapshot each such series must say whose it is.
TENANT_SCOPED_PREFIXES = ("stream_", "serving_")


def _is_number(value: object) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_scalar_map(payload: dict, kind: str, errors: list[str]) -> None:
    section = payload.get(kind)
    if not isinstance(section, dict):
        errors.append(f"{kind}: expected an object, got {type(section).__name__}")
        return
    for key, value in section.items():
        if not isinstance(key, str) or not key:
            errors.append(f"{kind}: non-string metric key {key!r}")
        if not _is_number(value):
            errors.append(f"{kind}[{key!r}]: expected a number, got {value!r}")


def validate_metrics(payload: object) -> list[str]:
    """Problems with a ``--metrics-out`` document (empty == valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"metrics: expected an object, got {type(payload).__name__}"]
    for extra in set(payload) - {"counters", "gauges", "histograms"}:
        errors.append(f"metrics: unexpected top-level key {extra!r}")
    _check_scalar_map(payload, "counters", errors)
    _check_scalar_map(payload, "gauges", errors)
    histograms = payload.get("histograms")
    if not isinstance(histograms, dict):
        errors.append(
            f"histograms: expected an object, got {type(histograms).__name__}"
        )
        return errors
    for key, histogram in histograms.items():
        prefix = f"histograms[{key!r}]"
        if not isinstance(histogram, dict):
            errors.append(f"{prefix}: expected an object")
            continue
        bounds = histogram.get("bounds")
        counts = histogram.get("counts")
        if not isinstance(bounds, list) or not all(
            _is_number(bound) for bound in bounds
        ):
            errors.append(f"{prefix}.bounds: expected a list of numbers")
            continue
        if sorted(bounds) != bounds:
            errors.append(f"{prefix}.bounds: must be sorted ascending")
        if not isinstance(counts, list) or not all(
            isinstance(count, int) and not isinstance(count, bool)
            and count >= 0
            for count in counts
        ):
            errors.append(
                f"{prefix}.counts: expected a list of non-negative ints"
            )
            continue
        if len(counts) != len(bounds) + 1:
            errors.append(
                f"{prefix}.counts: expected {len(bounds) + 1} slots "
                f"(bounds + overflow), got {len(counts)}"
            )
        count = histogram.get("count")
        if not isinstance(count, int) or count != sum(counts):
            errors.append(
                f"{prefix}.count: expected sum(counts)={sum(counts)}, "
                f"got {count!r}"
            )
        if not _is_number(histogram.get("sum")):
            errors.append(f"{prefix}.sum: expected a number")
    return errors


def validate_tenant_metrics(
    payload: object, tenants: Sequence[str]
) -> list[str]:
    """Per-tenant label coverage problems in a metrics document.

    For a snapshot produced by a multi-tenant run, every
    ``stream_*`` / ``serving_*`` series must carry a ``tenant`` label
    naming one of ``tenants`` — an unlabeled series means some
    tenant's traffic leaked into a shared series, an unknown name
    means a label was minted outside the manager.  Additionally every
    tenant must have a ``serving_version`` gauge: a tenant with no
    series at all never reported, which is its own kind of silent.

    Structural problems (:func:`validate_metrics`) are not re-checked
    here; run both.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [
            f"tenant-metrics: expected an object, "
            f"got {type(payload).__name__}"
        ]
    known = set(tenants)
    # Local parse of ``name{k=v,...}`` keys — mirrors
    # repro.obs.metrics.parse_key, kept inline so the validator stays
    # importable against raw JSON with no registry in sight.
    def split(key: str) -> tuple[str, dict[str, str]]:
        brace = key.find("{")
        if brace < 0:
            return key, {}
        body = key[brace + 1 : -1]
        if not body:
            return key[:brace], {}
        return key[:brace], dict(
            part.split("=", 1) for part in body.split(",") if "=" in part
        )

    for kind in ("counters", "gauges", "histograms"):
        section = payload.get(kind)
        if not isinstance(section, dict):
            continue  # validate_metrics reports the structural problem
        for key in section:
            if not isinstance(key, str):
                continue
            name, labels = split(key)
            if not name.startswith(TENANT_SCOPED_PREFIXES):
                continue
            tenant = labels.get("tenant")
            if tenant is None:
                errors.append(
                    f"{kind}[{key!r}]: tenant-scoped series without a "
                    "tenant label"
                )
            elif tenant not in known:
                errors.append(
                    f"{kind}[{key!r}]: unknown tenant {tenant!r}"
                )
    gauges = payload.get("gauges")
    if isinstance(gauges, dict):
        for tenant in sorted(known):
            probe = f"serving_version{{tenant={tenant}}}"
            if probe not in gauges:
                errors.append(
                    f"gauges: tenant {tenant!r} reported no "
                    "serving_version gauge"
                )
    return errors


def _validate_span(span: object, path: str, errors: list[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{path}: expected an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path}.name: expected a non-empty string")
    for key in ("start", "seconds"):
        value = span.get(key)
        if not _is_number(value) or value < 0:
            errors.append(f"{path}.{key}: expected a non-negative number")
    if not isinstance(span.get("detail"), str):
        errors.append(f"{path}.detail: expected a string")
    if span.get("status") not in SPAN_STATUSES:
        errors.append(
            f"{path}.status: expected one of {SPAN_STATUSES}, "
            f"got {span.get('status')!r}"
        )
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{path}.children: expected a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", errors)


def validate_trace(payload: object) -> list[str]:
    """Problems with a ``--trace-out`` document (empty == valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"trace: expected an object, got {type(payload).__name__}"]
    if not _is_number(payload.get("seconds")):
        errors.append("trace.seconds: expected a number")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("trace.spans: expected a list")
        return errors
    for i, span in enumerate(spans):
        _validate_span(span, f"trace.spans[{i}]", errors)
    return errors


def _validate_file(path: str, validator, label: str) -> list[str]:
    try:
        payload = json.loads(open(path, encoding="utf-8").read())
    except (OSError, ValueError) as exc:
        return [f"{label}: cannot read {path}: {exc}"]
    return [f"{label}: {problem}" for problem in validator(payload)]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate exported metrics/trace JSON documents."
    )
    parser.add_argument("--metrics", metavar="FILE", help="metrics JSON path")
    parser.add_argument("--trace", metavar="FILE", help="trace JSON path")
    parser.add_argument(
        "--tenants",
        metavar="NAMES",
        help=(
            "comma-separated tenant names; additionally checks the "
            "--metrics document's per-tenant label coverage"
        ),
    )
    args = parser.parse_args(argv)
    if not args.metrics and not args.trace:
        parser.error("nothing to validate: pass --metrics and/or --trace")
    if args.tenants and not args.metrics:
        parser.error("--tenants needs --metrics")
    problems: list[str] = []
    if args.metrics:
        problems += _validate_file(args.metrics, validate_metrics, "metrics")
        if args.tenants:
            names = [n for n in args.tenants.split(",") if n]
            problems += _validate_file(
                args.metrics,
                lambda payload: validate_tenant_metrics(payload, names),
                "tenant-metrics",
            )
    if args.trace:
        problems += _validate_file(args.trace, validate_trace, "trace")
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        checked = [p for p in (args.metrics, args.trace) if p]
        print(f"ok: {', '.join(checked)} valid")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
