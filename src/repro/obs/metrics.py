"""Process-merge-friendly metrics: counters, gauges, histograms.

The observability substrate the production framework needs (the KBC
architecture survey calls metrics a required cross-cutting component;
Dong et al. debug extractor and source quality off exactly these
numbers).  Three metric kinds, deliberately minimal:

* **counter** — a monotonically increasing total (``_total`` suffix by
  convention);
* **gauge** — a point-in-time value (last set wins locally, merges by
  maximum so merging is commutative);
* **histogram** — observations bucketed against *fixed* upper bounds,
  plus total count and sum.  Fixed bounds make worker snapshots
  mergeable by plain element-wise addition.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain-data
dataclasses: picklable, so a MapReduce worker can ship its local
registry's snapshot back to the parent, which folds it in with
:meth:`MetricsRegistry.merge_snapshot` — the same pattern
``JobStats`` uses for engine counters.  Merging worker-local snapshots
into a parent registry yields exactly the registry a serial run would
have produced (tested).

Determinism contract (mirrors ``PipelineReport.to_json_dict()``):
count-type metrics — counters, gauges and histograms over discrete
quantities — are pure functions of config + seeds and byte-identical
across same-seed runs.  Timing-type metrics are wall-clock and are
**excluded** from :meth:`MetricsSnapshot.deterministic_subset` by a
naming convention: any metric whose base name ends in ``_seconds`` is
timing-type.  Chaos determinism tests diff the deterministic subset of
two same-seed runs.

Labels are rendered into the metric key (``name{k=v,...}`` with keys
sorted), so snapshots are flat string-keyed dicts — trivially JSON-
and pickle-serializable, deterministically ordered when sorted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "HistogramSnapshot",
    "LabeledRegistry",
    "MetricsRegistry",
    "MetricsSnapshot",
    "is_timing_metric",
    "parse_key",
]

# Fixed default bucket upper bounds.  Counts cover the sizes seen in
# this repo (claims per component, records per wave); seconds cover
# micro-benchmarks through full pipeline runs.  The last implicit
# bucket is +inf (the overflow slot).
DEFAULT_COUNT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)

_TIMING_SUFFIX = "_seconds"


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Render ``name`` + labels into the flat snapshot key."""
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def base_name(key: str) -> str:
    """The metric name of a rendered key, labels stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key`: ``name{k=v,...}`` → name + labels.

    Only safe for labels whose values contain no ``,`` or ``=`` —
    which this repo's label values (tenant names, stage names, reason
    slugs) satisfy by construction.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    body = key[brace + 1 : -1]
    if not body:
        return key[:brace], {}
    return key[:brace], dict(
        part.split("=", 1) for part in body.split(",")
    )


def is_timing_metric(key: str) -> bool:
    """True for wall-clock metrics, excluded from the deterministic set."""
    return base_name(key).endswith(_TIMING_SUFFIX)


@dataclass(slots=True)
class HistogramSnapshot:
    """Plain-data state of one histogram (picklable, mergeable)."""

    bounds: tuple[float, ...]
    counts: list[int]
    count: int = 0
    sum: float = 0.0

    def merge(self, other: "HistogramSnapshot") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, value in enumerate(other.counts):
            self.counts[i] += value
        self.count += other.count
        self.sum += other.sum

    def to_json_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class _Counter:
    """Handle bound to one counter entry of a registry."""

    __slots__ = ("_store", "_key")

    def __init__(self, store: dict, key: str) -> None:
        self._store = store
        self._key = key

    @property
    def value(self) -> float:
        return self._store.get(self._key, 0)

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self._store[self._key] = self._store.get(self._key, 0) + amount


class _Gauge:
    """Handle bound to one gauge entry of a registry."""

    __slots__ = ("_store", "_key")

    def __init__(self, store: dict, key: str) -> None:
        self._store = store
        self._key = key

    @property
    def value(self) -> float:
        return self._store.get(self._key, 0)

    def set(self, value: float) -> None:
        self._store[self._key] = value


class _Histogram:
    """Handle bound to one histogram entry of a registry."""

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: HistogramSnapshot) -> None:
        self._snapshot = snapshot

    @property
    def count(self) -> int:
        return self._snapshot.count

    def observe(self, value: float) -> None:
        snapshot = self._snapshot
        for i, bound in enumerate(snapshot.bounds):
            if value <= bound:
                snapshot.counts[i] += 1
                break
        else:
            snapshot.counts[-1] += 1  # +inf overflow slot
        snapshot.count += 1
        snapshot.sum += value


@dataclass(slots=True)
class MetricsSnapshot:
    """Point-in-time plain-data copy of a registry (picklable).

    ``merge`` folds another snapshot in: counters add, gauges take the
    maximum (the commutative choice — merge order across workers is
    scheduling-dependent), histograms add element-wise.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in other.gauges.items():
            current = self.gauges.get(key)
            self.gauges[key] = (
                value if current is None else max(current, value)
            )
        for key, histogram in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = HistogramSnapshot(
                    bounds=histogram.bounds,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    sum=histogram.sum,
                )
            else:
                mine.merge(histogram)
        return self

    def to_json_dict(self) -> dict:
        """JSON-ready dict, deterministically key-ordered."""
        return {
            "counters": {
                key: self.counters[key] for key in sorted(self.counters)
            },
            "gauges": {key: self.gauges[key] for key in sorted(self.gauges)},
            "histograms": {
                key: self.histograms[key].to_json_dict()
                for key in sorted(self.histograms)
            },
        }

    def label_subset(self, **labels) -> "MetricsSnapshot":
        """The entries carrying every given ``k=v`` label pair.

        ``snapshot.label_subset(tenant="t00")`` pulls one tenant's
        series out of a shared registry — the isolation tests compare
        a tenant's subset against its solo run's snapshot.  Values are
        compared after ``str()`` (labels render stringly).
        """
        wanted = {key: str(value) for key, value in labels.items()}

        def keep(key: str) -> bool:
            _, have = parse_key(key)
            return all(have.get(k) == v for k, v in wanted.items())

        return MetricsSnapshot(
            counters={
                key: value
                for key, value in self.counters.items()
                if keep(key)
            },
            gauges={
                key: value
                for key, value in self.gauges.items()
                if keep(key)
            },
            histograms={
                key: HistogramSnapshot(
                    bounds=histogram.bounds,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    sum=histogram.sum,
                )
                for key, histogram in self.histograms.items()
                if keep(key)
            },
        )

    def deterministic_subset(self) -> dict:
        """The count-type metrics only (``*_seconds`` excluded).

        This is the part of a snapshot that must be byte-identical
        across same-seed runs; chaos determinism tests and the CI
        double-run diff compare exactly this dict.
        """
        payload = self.to_json_dict()
        return {
            kind: {
                key: value
                for key, value in metrics.items()
                if not is_timing_metric(key)
            }
            for kind, metrics in payload.items()
        }


class MetricsRegistry:
    """Live metric store: create-on-first-use counters/gauges/histograms.

    One registry per pipeline run (or per worker); handles returned by
    :meth:`counter`/:meth:`gauge`/:meth:`histogram` write straight into
    the registry's dicts, so there is no flush step — ``snapshot()``
    is always current.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSnapshot] = {}

    # -- handles -------------------------------------------------------
    def counter(self, name: str, **labels) -> _Counter:
        key = metric_key(name, labels)
        self._counters.setdefault(key, 0)
        return _Counter(self._counters, key)

    def gauge(self, name: str, **labels) -> _Gauge:
        key = metric_key(name, labels)
        self._gauges.setdefault(key, 0)
        return _Gauge(self._gauges, key)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> _Histogram:
        """A histogram handle; ``buckets`` fixes the upper bounds.

        When omitted, ``*_seconds`` metrics get
        :data:`DEFAULT_SECONDS_BUCKETS` and everything else
        :data:`DEFAULT_COUNT_BUCKETS`.  Bounds are fixed at first use;
        later calls must agree (or omit ``buckets``).
        """
        key = metric_key(name, labels)
        existing = self._histograms.get(key)
        if existing is None:
            if buckets is None:
                buckets = (
                    DEFAULT_SECONDS_BUCKETS
                    if is_timing_metric(name)
                    else DEFAULT_COUNT_BUCKETS
                )
            bounds = tuple(sorted(float(bound) for bound in buckets))
            if not bounds:
                raise ValueError("a histogram needs at least one bound")
            existing = HistogramSnapshot(
                bounds=bounds, counts=[0] * (len(bounds) + 1)
            )
            self._histograms[key] = existing
        elif buckets is not None and tuple(
            sorted(float(bound) for bound in buckets)
        ) != existing.bounds:
            raise ValueError(
                f"histogram {key!r} already registered with bounds "
                f"{existing.bounds}"
            )
        return _Histogram(existing)

    def labeled(self, **labels) -> "LabeledRegistry":
        """A write view stamping ``labels`` onto every series.

        The multi-tenant manager hands each tenant's stack
        ``registry.labeled(tenant=name)`` so every ``stream_*`` /
        ``serving_*`` series the stack emits lands in the shared
        registry under its tenant label — the components never learn
        about tenancy.
        """
        return LabeledRegistry(self, labels)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """A picklable plain-data copy of the current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                key: HistogramSnapshot(
                    bounds=histogram.bounds,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    sum=histogram.sum,
                )
                for key, histogram in self._histograms.items()
            },
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker-local snapshot into this registry.

        Counters add, gauges take the maximum, histograms add
        element-wise — merging N worker snapshots into a fresh registry
        reproduces the registry a serial run would have built.
        """
        for key, value in snapshot.counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.gauges.items():
            current = self._gauges.get(key)
            self._gauges[key] = (
                value if current is None else max(current, value)
            )
        for key, histogram in snapshot.histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = HistogramSnapshot(
                    bounds=histogram.bounds,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    sum=histogram.sum,
                )
            else:
                mine.merge(histogram)


class LabeledRegistry:
    """Registry view that merges fixed labels into every call.

    Quacks like :class:`MetricsRegistry` for the write side
    (``counter``/``gauge``/``histogram``) so components accepting a
    ``metrics=`` argument work unchanged behind it.  The fixed labels
    win over call-site labels of the same name — a component must not
    be able to escape (or spoof) the tenant its view was scoped to.
    Views nest: ``registry.labeled(tenant="a").labeled(shard="0")``
    stamps both.
    """

    __slots__ = ("_registry", "_labels")

    def __init__(
        self, registry: MetricsRegistry, labels: dict[str, object]
    ) -> None:
        self._registry = registry
        self._labels = dict(labels)

    @property
    def labels(self) -> dict[str, object]:
        return dict(self._labels)

    def counter(self, name: str, **labels) -> _Counter:
        return self._registry.counter(name, **{**labels, **self._labels})

    def gauge(self, name: str, **labels) -> _Gauge:
        return self._registry.gauge(name, **{**labels, **self._labels})

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> _Histogram:
        return self._registry.histogram(
            name, buckets=buckets, **{**labels, **self._labels}
        )

    def labeled(self, **labels) -> "LabeledRegistry":
        # Outer (existing) labels win, matching the per-call merge.
        return LabeledRegistry(
            self._registry, {**labels, **self._labels}
        )

    def snapshot(self) -> MetricsSnapshot:
        """The *underlying* registry's snapshot (views share state)."""
        return self._registry.snapshot()
