"""Nested span tracing for pipeline runs.

A *span* is one named unit of work with a wall-clock start offset and
duration; spans nest, so a run exports as a JSON trace tree — the
pipeline root span, stage spans under it, and finer-grained children
(phases, fuse call) under those.  This is the same shape distributed
tracers emit, kept dependency-free.

Two ways to create spans:

* :meth:`SpanTracer.span` — a context manager timing a live block
  (the rewritten ``_timed`` in the pipeline uses this);
* :meth:`SpanTracer.record` — attach an already-measured duration as a
  completed child span, for work timed elsewhere (extraction stage
  bodies measure their own wall time inside worker processes, so the
  parent records the returned seconds).

All span fields are timing-type and therefore outside the metric
determinism contract; traces are for debugging latency, not for
byte-identical diffing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracer"]


@dataclass(slots=True)
class Span:
    """One named unit of work in the trace tree."""

    name: str
    start: float  # seconds since the tracer's epoch
    seconds: float = 0.0
    detail: str = ""
    status: str = "ok"  # "ok" | "failed"
    children: list["Span"] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "detail": self.detail,
            "status": self.status,
            "children": [child.to_json_dict() for child in self.children],
        }


class _SpanHandle:
    """An open span: context manager and explicit ``end()`` in one."""

    __slots__ = ("_tracer", "span", "_closed")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._closed = False

    def end(self, *, detail: str | None = None, failed: bool = False) -> Span:
        if self._closed:
            return self.span
        self._closed = True
        self.span.seconds = self._tracer._now() - self.span.start
        if detail is not None:
            self.span.detail = detail
        if failed:
            self.span.status = "failed"
        self._tracer._pop(self.span)
        return self.span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(failed=exc_type is not None)


class SpanTracer:
    """Collects a tree of nested spans against one clock epoch.

    The clock is injectable for tests; offsets are relative to the
    tracer's construction time, so a trace is self-contained.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- public API ----------------------------------------------------
    def span(self, name: str, detail: str = "") -> _SpanHandle:
        """Open a nested span; close it via ``with`` or ``.end()``."""
        span = Span(name=name, start=self._now(), detail=detail)
        self._attach(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def record(
        self,
        name: str,
        seconds: float,
        *,
        detail: str = "",
        failed: bool = False,
    ) -> Span:
        """Attach a completed span whose duration was measured elsewhere.

        The start offset is back-dated by ``seconds`` so the span sits
        where the work actually ran (stage bodies measure inside
        worker processes and return their seconds to the parent).
        """
        span = Span(
            name=name,
            start=max(0.0, self._now() - seconds),
            seconds=seconds,
            detail=detail,
            status="failed" if failed else "ok",
        )
        self._attach(span)
        return span

    def to_json_dict(self) -> dict:
        """The JSON trace tree (``--trace-out`` writes exactly this)."""
        return {
            "seconds": self._now(),
            "spans": [span.to_json_dict() for span in self.roots],
        }
