"""Web-text extraction: seed-driven lexical-pattern learning.

The framework "learns regular lexical and parse patterns ... from
sentences and adopts these patterns directly to conduct knowledge
extraction" (Sec. 3.1), seeded by the accurate sources.  Concretely:

1. **Learning** — find sentences that simultaneously realise a seed
   fact: an entity of the class, a seed attribute name, and a value the
   seed KB claims for that (entity, attribute).  Abstract the three
   spans into slots, yielding a lexical pattern such as
   ``"the <A> of <E> is <V> ."``.  Patterns must explain at least
   ``min_pattern_support`` distinct sentences to be adopted.
2. **Extraction** — apply the adopted patterns to every sentence.
   Matches yield scored triples; attribute slots that are *not* seeds
   are candidate new attributes (with support thresholds, as in the
   other extractors).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.extract.base import ExtractorOutput
from repro.extract.seeds import SeedSet
from repro.rdf.ontology import Entity
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.webtext import TextDocument
from repro.textproc.normalize import normalize_attribute
from repro.textproc.patterns import LexicalPattern, induce_pattern
from repro.textproc.sentences import split_sentences
from repro.textproc.tokenize import detokenize, tokenize_words

EXTRACTOR_ID = "webtext"


@dataclass(slots=True)
class WebTextExtractorConfig:
    """Learning and extraction thresholds."""

    min_pattern_support: int = 2
    min_new_attribute_support: int = 2
    max_slot_tokens: int = 6
    max_attribute_tokens: int = 4


@dataclass(slots=True)
class _NewAttributeEvidence:
    support: int = 0
    entities: set[str] = field(default_factory=set)
    sources: set[str] = field(default_factory=set)


class WebTextExtractor:
    """Learn patterns from seed facts, then harvest new triples."""

    def __init__(
        self,
        entity_index: dict[str, Entity],
        seed_sets: dict[str, SeedSet],
        seed_claims: Iterable[ScoredTriple],
        config: WebTextExtractorConfig | None = None,
    ) -> None:
        self.config = config or WebTextExtractorConfig()
        self._index = {
            surface.lower(): entity for surface, entity in entity_index.items()
        }
        self._max_surface_tokens = max(
            (len(surface.split()) for surface in self._index), default=1
        )
        self._seeds = seed_sets
        # (entity_id, canonical attribute) -> claimed lexical values.
        self._seed_values: dict[tuple[str, str], set[str]] = {}
        for claim in seed_claims:
            key = (claim.triple.subject, claim.triple.predicate)
            self._seed_values.setdefault(key, set()).add(
                claim.triple.obj.lexical.lower()
            )
        self.learned_patterns: dict[str, LexicalPattern] = {}
        self._pattern_support: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def learn(self, documents: Iterable[TextDocument]) -> int:
        """Learn patterns from documents; returns adopted pattern count."""
        for document in documents:
            seeds = self._seeds.get(document.class_name)
            if seeds is None:
                continue
            for sentence in split_sentences(document.text):
                tokens = tokenize_words(sentence)
                self._learn_from_sentence(tokens, seeds)
        adopted = {
            source: pattern
            for source, pattern in self.learned_patterns.items()
            if self._pattern_support[source] >= self.config.min_pattern_support
        }
        self.learned_patterns = adopted
        return len(adopted)

    def _learn_from_sentence(
        self, tokens: list[str], seeds: SeedSet
    ) -> None:
        entity_span = self._find_entity_span(tokens)
        if entity_span is None:
            return
        entity, (entity_start, entity_end) = entity_span
        attribute_span = self._find_seed_attribute_span(
            tokens, seeds, forbidden=(entity_start, entity_end)
        )
        if attribute_span is None:
            return
        attribute, (attr_start, attr_end) = attribute_span
        values = self._seed_values.get((entity.entity_id, attribute))
        if not values:
            return
        value_span = self._find_value_span(
            tokens, values, forbidden=[(entity_start, entity_end), (attr_start, attr_end)]
        )
        if value_span is None:
            return
        pattern = induce_pattern(
            tokens,
            {
                "E": (entity_start, entity_end),
                "A": (attr_start, attr_end),
                "V": value_span,
            },
            max_slot_tokens=self.config.max_slot_tokens,
        )
        if pattern is None:
            return
        key = pattern.source
        if key not in self.learned_patterns:
            self.learned_patterns[key] = LexicalPattern(
                key,
                max_slot_tokens=self.config.max_slot_tokens,
                validators={"E": self._is_known_entity},
            )
            self._pattern_support[key] = 0
        self._pattern_support[key] += 1

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(self, documents: Iterable[TextDocument]) -> ExtractorOutput:
        """Apply the learned patterns; call :meth:`learn` first."""
        output = ExtractorOutput(EXTRACTOR_ID)
        evidence: dict[tuple[str, str], _NewAttributeEvidence] = {}
        for document in documents:
            seeds = self._seeds.get(document.class_name)
            if seeds is None:
                continue
            for sentence in split_sentences(document.text):
                tokens = tokenize_words(sentence)
                self._extract_from_sentence(
                    tokens, document, seeds, output, evidence
                )
        for (class_name, name), record in evidence.items():
            if record.support >= self.config.min_new_attribute_support:
                output.add_attribute(
                    class_name,
                    name,
                    support=record.support,
                    entity_support=len(record.entities),
                    sources=record.sources,
                )
        return output

    def _extract_from_sentence(
        self,
        tokens: list[str],
        document: TextDocument,
        seeds: SeedSet,
        output: ExtractorOutput,
        evidence: dict[tuple[str, str], _NewAttributeEvidence],
    ) -> None:
        for pattern in self.learned_patterns.values():
            for match in pattern.match_tokens(tokens):
                entity = self._index.get(match.text("E").lower())
                if entity is None or entity.class_name != document.class_name:
                    continue
                attribute = normalize_attribute(match.text("A"))
                if not self._acceptable_attribute(attribute):
                    continue
                value_text = detokenize(match.bindings["V"])
                if not value_text:
                    continue
                output.triples.append(
                    ScoredTriple(
                        Triple(entity.entity_id, attribute, Value(value_text)),
                        Provenance(
                            source_id=document.source_id,
                            extractor_id=EXTRACTOR_ID,
                            locator=document.doc_id,
                        ),
                    )
                )
                if attribute not in seeds:
                    key = (document.class_name, attribute)
                    record = evidence.setdefault(key, _NewAttributeEvidence())
                    record.support += 1
                    record.entities.add(entity.entity_id)
                    record.sources.add(document.source_id)

    # ------------------------------------------------------------------
    # Span finders
    # ------------------------------------------------------------------
    def _is_known_entity(self, tokens: list[str]) -> bool:
        return " ".join(tokens).lower() in self._index

    def _find_entity_span(
        self, tokens: list[str]
    ) -> tuple[Entity, tuple[int, int]] | None:
        lowered = [token.lower() for token in tokens]
        max_len = min(self._max_surface_tokens, len(tokens))
        for span_len in range(max_len, 0, -1):
            for start in range(0, len(tokens) - span_len + 1):
                entity = self._index.get(
                    " ".join(lowered[start : start + span_len])
                )
                if entity is not None:
                    return entity, (start, start + span_len)
        return None

    def _find_seed_attribute_span(
        self,
        tokens: list[str],
        seeds: SeedSet,
        forbidden: tuple[int, int],
    ) -> tuple[str, tuple[int, int]] | None:
        lowered = [token.lower() for token in tokens]
        for span_len in range(self.config.max_attribute_tokens, 0, -1):
            for start in range(0, len(tokens) - span_len + 1):
                end = start + span_len
                if _overlaps((start, end), forbidden):
                    continue
                candidate = normalize_attribute(" ".join(lowered[start:end]))
                if candidate and candidate in seeds:
                    return candidate, (start, end)
        return None

    def _find_value_span(
        self,
        tokens: list[str],
        values: set[str],
        forbidden: list[tuple[int, int]],
    ) -> tuple[int, int] | None:
        lowered = [token.lower() for token in tokens]
        for span_len in range(self.config.max_slot_tokens, 0, -1):
            for start in range(0, len(tokens) - span_len + 1):
                end = start + span_len
                if any(_overlaps((start, end), span) for span in forbidden):
                    continue
                if " ".join(lowered[start:end]) in values:
                    return (start, end)
        return None

    def _acceptable_attribute(self, attribute: str) -> bool:
        if not attribute:
            return False
        words = attribute.split(" ")
        if len(words) > self.config.max_attribute_tokens:
            return False
        if any(word.isdigit() for word in words):
            return False
        return True


def _overlaps(left: tuple[int, int], right: tuple[int, int]) -> bool:
    return left[0] < right[1] and right[0] < left[1]
