"""Seed-set management.

The framework bootstraps Web extraction with *seeds*: attributes first
extracted from the accurate sources (existing KBs and the query
stream), per class.  ``SEED_SET(T)`` in Algorithm 1 is exactly such a
set; the DOM extractor both consumes and *enriches* it.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.extract.base import ExtractorOutput
from repro.textproc.normalize import normalize_attribute


class SeedSet:
    """A per-class, growable set of canonical attribute names."""

    def __init__(self, class_name: str, names: Iterable[str] = ()) -> None:
        self.class_name = class_name
        self._names: set[str] = set()
        for name in names:
            self.add(name)

    def add(self, name: str) -> bool:
        """Add a (canonicalised) attribute name; True when new."""
        canonical = normalize_attribute(name)
        if not canonical or canonical in self._names:
            return False
        self._names.add(canonical)
        return True

    def __contains__(self, name: str) -> bool:
        return normalize_attribute(name) in self._names

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self):
        return iter(sorted(self._names))

    def names(self) -> set[str]:
        return set(self._names)

    def copy(self) -> "SeedSet":
        clone = SeedSet(self.class_name)
        clone._names = set(self._names)
        return clone


def build_seed_sets(
    outputs: Iterable[ExtractorOutput],
    class_names: Iterable[str],
    *,
    min_support: int = 1,
) -> dict[str, SeedSet]:
    """Combine extractor outputs into per-class seed sets.

    Attributes whose total support (across extractors) falls below
    ``min_support`` are excluded: seeds must be trustworthy because the
    DOM extractor generalises from them.
    """
    outputs = list(outputs)
    seeds: dict[str, SeedSet] = {}
    for class_name in class_names:
        support: dict[str, int] = {}
        for output in outputs:
            for name, record in output.attributes.get(class_name, {}).items():
                support[name] = support.get(name, 0) + record.support
        seeds[class_name] = SeedSet(
            class_name,
            (name for name, total in support.items() if total >= min_support),
        )
    return seeds
