"""Attribute extraction from the query stream (Sec. 4, Table 3).

The paper's improved query-stream technique uses the patterns
``"what/how/when/who is the A of (the/a/an) E"``, ``"the A of
(the/a/an) E"`` and ``"E's A"``, plus a set of filtering rules that
exclude meaningless attributes.  Entity recognition treats each class
as a set of representative entities (from the Freebase snapshot).

A candidate attribute becomes **credible** only with enough evidence:
at least ``min_support`` matching records spanning at least
``min_entity_support`` distinct entities.  Classes whose queries are
navigational (Hotel) produce no credible attributes — the paper's
"N/A" row.

**Why this extractor emits no claims (``ExtractorOutput.triples`` is
always empty).** Query records are *questions*: "what is the capital
of Atlantis" names an attribute and an entity but never carries a
value, so there is no (subject, predicate, value) fact to claim and
nothing to hand to fusion directly.  This matches the paper, where the
query-stream technique exists for *new attribute discovery* (Sec. 4,
Table 3 counts credible attributes, not facts).  The extractor's
output still reaches fusion indirectly — and essentially: its credible
attributes join the KB attributes in ``build_seed_sets``, and those
seed sets drive the DOM and Web-text extractors that *do* produce
value claims.  A regression test pins both halves of this contract
(zero triples, attributes flowing into seeds).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.extract.base import ExtractorOutput
from repro.rdf.ontology import Entity
from repro.synth.querylog import QueryRecord
from repro.textproc.normalize import normalize_attribute
from repro.textproc.patterns import LexicalPattern
from repro.textproc.tokenize import tokenize_words

EXTRACTOR_ID = "querystream"

# Words that signal navigational/transactional intent, not attributes.
_STOP_ATTRIBUTE_WORDS = frozenset(
    {
        "best", "cheap", "cheapest", "free", "new", "top", "latest",
        "near", "nearby", "good", "photos", "photo", "pictures", "review",
        "reviews", "online", "booking", "deals", "discount", "price",
        "prices", "site", "website", "wiki", "news", "map", "maps",
    }
)

_PATTERN_SOURCES = (
    "what|how|when|who is|was the <A> of [the|a|an] <E>",
    "the <A> of [the|a|an] <E>",
    "<E> 's <A>",
)


@dataclass(slots=True)
class QueryStreamConfig:
    """Extraction thresholds and limits."""

    min_support: int = 3
    min_entity_support: int = 2
    max_attribute_tokens: int = 4
    max_entity_tokens: int = 6


@dataclass(slots=True)
class QueryStreamStats:
    """Per-class stream statistics (the columns of Table 3)."""

    relevant_records: dict[str, int] = field(default_factory=dict)
    candidate_attributes: dict[str, int] = field(default_factory=dict)
    credible_attributes: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class _Evidence:
    support: int = 0
    entities: set[str] = field(default_factory=set)


class QueryStreamExtractor:
    """Pattern-based attribute extraction over a query log."""

    def __init__(
        self,
        entity_index: dict[str, Entity],
        config: QueryStreamConfig | None = None,
    ) -> None:
        self.config = config or QueryStreamConfig()
        self._index = {
            surface.lower(): entity for surface, entity in entity_index.items()
        }
        self._max_surface_tokens = max(
            (len(surface.split()) for surface in self._index),
            default=1,
        )
        validators = {"E": self._is_known_entity}
        self.patterns = [
            LexicalPattern(
                source,
                max_slot_tokens=self.config.max_entity_tokens,
                validators=validators,
            )
            for source in _PATTERN_SOURCES
        ]

    # ------------------------------------------------------------------
    def extract(
        self, records: Iterable[QueryRecord]
    ) -> tuple[ExtractorOutput, QueryStreamStats]:
        """Run extraction; returns discovered attributes plus Table-3 stats."""
        output = ExtractorOutput(EXTRACTOR_ID)
        stats = QueryStreamStats()
        evidence: dict[tuple[str, str], _Evidence] = {}

        for record in records:
            tokens = _strip_query_tail(tokenize_words(record.text))
            if not tokens:
                continue
            mentioned = self._mentioned_entities(tokens)
            for entity in mentioned.values():
                stats.relevant_records[entity.class_name] = (
                    stats.relevant_records.get(entity.class_name, 0) + 1
                )
            if not mentioned:
                continue
            for attribute, entity in self._match_patterns(tokens):
                if not self._passes_filters(attribute, entity):
                    continue
                key = (entity.class_name, attribute)
                record_evidence = evidence.setdefault(key, _Evidence())
                record_evidence.support += 1
                record_evidence.entities.add(entity.entity_id)

        for (class_name, attribute), record_evidence in evidence.items():
            stats.candidate_attributes[class_name] = (
                stats.candidate_attributes.get(class_name, 0) + 1
            )
            if (
                record_evidence.support >= self.config.min_support
                and len(record_evidence.entities)
                >= self.config.min_entity_support
            ):
                output.add_attribute(
                    class_name,
                    attribute,
                    support=record_evidence.support,
                    entity_support=len(record_evidence.entities),
                    sources={"querystream"},
                )
                stats.credible_attributes[class_name] = (
                    stats.credible_attributes.get(class_name, 0) + 1
                )
        return output, stats

    # ------------------------------------------------------------------
    def _is_known_entity(self, tokens: list[str]) -> bool:
        return " ".join(tokens).lower() in self._index

    def _mentioned_entities(self, tokens: list[str]) -> dict[str, Entity]:
        """Entities whose surface form appears as a token span."""
        found: dict[str, Entity] = {}
        lowered = [token.lower() for token in tokens]
        max_len = min(self._max_surface_tokens, len(tokens))
        for span_len in range(max_len, 0, -1):
            for start in range(0, len(tokens) - span_len + 1):
                surface = " ".join(lowered[start : start + span_len])
                entity = self._index.get(surface)
                if entity is not None and entity.entity_id not in found:
                    found[entity.entity_id] = entity
        return found

    def _match_patterns(
        self, tokens: list[str]
    ) -> list[tuple[str, Entity]]:
        """Anchored pattern matches → (canonical attribute, entity)."""
        hits: list[tuple[str, Entity]] = []
        for pattern in self.patterns:
            for match in pattern.match_tokens(tokens, anchored=True):
                entity = self._index.get(match.text("E").lower())
                if entity is None:
                    continue
                attribute = normalize_attribute(match.text("A"))
                if attribute:
                    hits.append((attribute, entity))
        return hits

    def _passes_filters(self, attribute: str, entity: Entity) -> bool:
        """The paper's filtering rules for meaningless attributes."""
        words = attribute.split(" ")
        if not words or len(words) > self.config.max_attribute_tokens:
            return False
        if all(word in _STOP_ATTRIBUTE_WORDS for word in words):
            return False
        if any(word.isdigit() for word in words):
            return False
        if any(
            marker in word
            for word in words
            for marker in ("www", ".com", "http")
        ):
            return False
        if attribute == entity.name.lower():
            return False
        if attribute in self._index:  # attribute text is itself an entity
            return False
        return True


def _strip_query_tail(tokens: list[str]) -> list[str]:
    """Drop trailing punctuation and bare years from a query."""
    end = len(tokens)
    while end > 0:
        token = tokens[end - 1]
        if token in {".", "?", "!", ","}:
            end -= 1
        elif token.isdigit() and len(token) == 4:
            end -= 1
        else:
            break
    return tokens[:end]
