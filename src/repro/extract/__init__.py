"""Knowledge extractors: existing KBs, query stream, DOM trees, Web texts."""

from repro.extract.base import DiscoveredAttribute, ExtractorOutput
from repro.extract.dom import DomExtractorConfig, DomTreeExtractor
from repro.extract.kb import (
    KbExtractor,
    canonicalize_kb_name,
    combine_kb_outputs,
)
from repro.extract.querystream import (
    QueryStreamConfig,
    QueryStreamExtractor,
    QueryStreamStats,
)
from repro.extract.seeds import SeedSet, build_seed_sets
from repro.extract.webtext import WebTextExtractor, WebTextExtractorConfig

__all__ = [
    "DiscoveredAttribute",
    "DomExtractorConfig",
    "DomTreeExtractor",
    "ExtractorOutput",
    "KbExtractor",
    "QueryStreamConfig",
    "QueryStreamExtractor",
    "QueryStreamStats",
    "SeedSet",
    "WebTextExtractor",
    "WebTextExtractorConfig",
    "build_seed_sets",
    "canonicalize_kb_name",
    "combine_kb_outputs",
]
