"""Shared extractor types.

Phase one of the framework produces two kinds of output (Sec. 3.1):

* **discovered attributes** per class (new attribute discovery — what
  Tables 2 and 3 count), and
* **scored triples** (new facts with provenance and confidence) that
  feed the knowledge-fusion phase.

Both are carried in an :class:`ExtractorOutput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.triple import ScoredTriple


@dataclass(slots=True)
class DiscoveredAttribute:
    """One attribute discovered for a class by one extractor.

    ``name`` is canonical (via
    :func:`repro.textproc.normalize.normalize_attribute`);
    ``support`` counts evidence occurrences; ``entity_support`` counts
    the distinct entities the evidence spanned; ``sources`` are the Web
    sources/KBs that exhibited the attribute.
    """

    name: str
    class_name: str
    extractor_id: str
    support: int = 1
    entity_support: int = 1
    sources: set[str] = field(default_factory=set)
    confidence: float = 0.0

    def merge_evidence(
        self, support: int, entity_support: int, sources: set[str]
    ) -> None:
        """Fold additional evidence into this record."""
        self.support += support
        self.entity_support = max(self.entity_support, entity_support)
        self.sources |= sources


@dataclass(slots=True)
class ExtractorOutput:
    """Everything one extractor produced.

    ``attributes`` maps class name → discovered attributes (keyed lists,
    one record per canonical attribute name); ``triples`` are scored
    fact claims for fusion.
    """

    extractor_id: str
    attributes: dict[str, dict[str, DiscoveredAttribute]] = field(
        default_factory=dict
    )
    triples: list[ScoredTriple] = field(default_factory=list)

    def add_attribute(
        self,
        class_name: str,
        name: str,
        *,
        support: int = 1,
        entity_support: int = 1,
        sources: set[str] | None = None,
    ) -> DiscoveredAttribute:
        """Record (or reinforce) a discovered attribute."""
        per_class = self.attributes.setdefault(class_name, {})
        record = per_class.get(name)
        evidence_sources = set(sources or ())
        if record is None:
            record = DiscoveredAttribute(
                name=name,
                class_name=class_name,
                extractor_id=self.extractor_id,
                support=support,
                entity_support=entity_support,
                sources=evidence_sources,
            )
            per_class[name] = record
        else:
            record.merge_evidence(support, entity_support, evidence_sources)
        return record

    def attribute_names(self, class_name: str) -> set[str]:
        """Canonical attribute names discovered for a class."""
        return set(self.attributes.get(class_name, {}))

    def attribute_count(self, class_name: str) -> int:
        return len(self.attributes.get(class_name, {}))
