"""DOM-tree attribute extraction — Algorithm 1 of the paper.

Given a class ``T``, websites about ``T``, the entity set of ``T`` and a
seed attribute set (from query stream + existing KBs), the algorithm:

1. parses every page and classifies text nodes into **entity nodes**
   (text names an entity of ``T``) and **non-entity nodes**;
2. on pages containing at least one (entity, seed-attribute) pair,
   extracts the tag paths between the entity node and each seed label,
   cleans noisy tags, and keeps them as the page's *induced tag path
   pattern set*;
3. compares every other non-entity node's tag path against the induced
   patterns; similar nodes are recognised as **new attributes** and
   added to the seed set (enriching ``SEED_SET(T)`` as the loop runs);
4. keeps iterating over a site while the seed set grows, then moves to
   the next site (with a per-site cap, the paper's "certain
   threshold").

Beyond attribute names, the extractor also emits **value triples**: for
each recognised label node, the next non-label text node in document
order is taken as the attribute's value on that page (the label/value
adjacency that every generated layout — and most real infobox layouts —
exhibits).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.entity.linking import mention_subject
from repro.extract.base import ExtractorOutput
from repro.extract.seeds import SeedSet
from repro.htmldom.node import TextNode
from repro.htmldom.parser import parse_html
from repro.htmldom.tagpath import RelativeTagPath, relative_path
from repro.rdf.ontology import Entity
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.websites import Website
from repro.textproc.normalize import normalize_attribute

EXTRACTOR_ID = "dom"


@dataclass(slots=True)
class DomExtractorConfig:
    """Thresholds of Algorithm 1."""

    similarity_threshold: float = 0.92
    max_new_attributes_per_site: int = 400
    min_attribute_support: int = 2  # distinct pages for a *new* attribute
    max_label_tokens: int = 6
    max_passes_per_site: int = 3
    with_classes: bool = True  # include CSS classes in tag-path labels
    # New-entity creation support (Sec. 3.1): pages whose heading names
    # no known entity still harvest values for *seed* attributes, with
    # mention subjects that joint entity resolution later links or
    # clusters into new entities.
    allow_mention_anchors: bool = False


@dataclass(slots=True)
class _LabelNode:
    """A non-entity text node that may be an attribute label."""

    node: TextNode
    order: int  # document order among text nodes
    canonical: str
    path: RelativeTagPath | None = None


@dataclass(slots=True)
class _AttributeEvidence:
    pages: set[str] = field(default_factory=set)
    sites: set[str] = field(default_factory=set)
    entities: set[str] = field(default_factory=set)
    support: int = 0
    is_seed: bool = False


class DomTreeExtractor:
    """Algorithm 1 over generated (or any) websites.

    Parameters
    ----------
    entity_index:
        Surface form (lower-case) → :class:`Entity`; the ``Set_E`` of
        Algorithm 1, typically the Freebase snapshot's entity sets.
    seed_sets:
        Per-class seed attribute sets; the extractor works on copies and
        enriches them.
    """

    def __init__(
        self,
        entity_index: dict[str, Entity],
        seed_sets: dict[str, SeedSet],
        config: DomExtractorConfig | None = None,
    ) -> None:
        self.config = config or DomExtractorConfig()
        self._index = {
            surface.lower(): entity for surface, entity in entity_index.items()
        }
        self._seeds = {
            class_name: seed.copy() for class_name, seed in seed_sets.items()
        }
        # Pages already processed successfully; multi-pass site loops
        # must not double-count their evidence or re-emit their triples.
        self._done_pages: set[str] = set()
        # Mention surface -> class name, for joint entity resolution.
        self.mention_classes: dict[str, str] = {}

    # ------------------------------------------------------------------
    def extract(self, websites: Iterable[Website]) -> ExtractorOutput:
        """Run Algorithm 1 over all websites; returns attributes + triples."""
        output = ExtractorOutput(EXTRACTOR_ID)
        evidence: dict[tuple[str, str], _AttributeEvidence] = {}
        pending: list[tuple[tuple[str, str], ScoredTriple]] = []
        for site in websites:
            self._extract_site(site, output, evidence, pending)
        accepted: set[tuple[str, str]] = set()
        for (class_name, name), record in evidence.items():
            if not record.is_seed and (
                len(record.pages) < self.config.min_attribute_support
            ):
                continue
            accepted.add((class_name, name))
            output.add_attribute(
                class_name,
                name,
                support=record.support,
                entity_support=max(1, len(record.entities)),
                sources=record.sites,
            )
        # Triples are only trustworthy for attributes that survived the
        # support threshold — per-page noise labels never produce facts.
        output.triples = [
            scored for key, scored in pending if key in accepted
        ]
        return output

    def enriched_seeds(self, class_name: str) -> SeedSet:
        """The enriched seed set for a class after extraction."""
        return self._seeds[class_name]

    # ------------------------------------------------------------------
    def _extract_site(
        self,
        site: Website,
        output: ExtractorOutput,
        evidence: dict[tuple[str, str], _AttributeEvidence],
        pending: list[tuple[tuple[str, str], ScoredTriple]],
    ) -> None:
        class_name = site.class_name
        seeds = self._seeds.setdefault(class_name, SeedSet(class_name))
        new_for_site = 0
        for _ in range(self.config.max_passes_per_site):
            grew = False
            for page in site.pages:
                if page.url in self._done_pages:
                    continue
                processed, page_new = self._extract_page(
                    site, page.html, page.url, class_name, seeds,
                    evidence, pending,
                )
                if processed:
                    self._done_pages.add(page.url)
                new_for_site += page_new
                grew = grew or page_new > 0
                if new_for_site >= self.config.max_new_attributes_per_site:
                    return  # the paper's per-site threshold: move on
            if not grew:
                break  # |A_T| did not increase: traverse another site

    def _extract_page(
        self,
        site: Website,
        html: str,
        url: str,
        class_name: str,
        seeds: SeedSet,
        evidence: dict[tuple[str, str], _AttributeEvidence],
        pending: list[tuple[tuple[str, str], ScoredTriple]],
    ) -> tuple[bool, int]:
        document = parse_html(html)
        text_nodes = list(document.iter_text_nodes())

        # Classify text nodes: entity vs non-entity.
        anchor: TextNode | None = None
        anchor_entity: Entity | None = None
        labels: list[_LabelNode] = []
        for order, node in enumerate(text_nodes):
            surface = node.text.strip().lower()
            entity = self._index.get(surface)
            if entity is not None and entity.class_name == class_name:
                if anchor is None:
                    anchor = node
                    anchor_entity = entity
                continue
            canonical = normalize_attribute(node.text)
            labels.append(_LabelNode(node, order, canonical))
        mention_mode = False
        if anchor is None:
            if not self.config.allow_mention_anchors:
                # Algorithm 1 requires an entity of Set_E on the page;
                # such pages are final (no seed growth changes them).
                return True, 0
            anchor = self._heading_node(text_nodes)
            if anchor is None:
                return True, 0
            mention_mode = True
            labels = [label for label in labels if label.node is not anchor]

        # Induced tag-path pattern set: paths from the entity node to
        # every seed-attribute label on this page.
        induced: list[RelativeTagPath] = []
        for label in labels:
            if label.canonical and label.canonical in seeds:
                label.path = self._path(anchor, label.node)
                induced.append(label.path)
        if not induced:
            return False, 0  # no (A, E) pair yet: revisit on a later pass

        # Compare every other non-entity node against the induced set.
        new_count = 0
        label_orders: dict[int, _LabelNode] = {}
        for label in labels:
            if label.path is None:
                label.path = self._path(anchor, label.node)
            similarity = max(
                label.path.similarity(pattern) for pattern in induced
            )
            if similarity < self.config.similarity_threshold:
                continue
            if not self._acceptable_label(label.canonical):
                continue
            label_orders[label.order] = label
            if mention_mode:
                # Mention pages harvest values for seed attributes only;
                # they carry no Set_E evidence for attribute discovery.
                if label.canonical in seeds:
                    label_orders[label.order] = label
                continue
            key = (class_name, label.canonical)
            record = evidence.setdefault(key, _AttributeEvidence())
            if label.canonical in seeds:
                record.is_seed = True
            elif seeds.add(label.canonical):
                new_count += 1
            record.pages.add(url or site.site_id)
            record.sites.add(site.site_id)
            record.entities.add(anchor_entity.entity_id)
            record.support += 1

        # Value triples: the next non-label text node after each label.
        if mention_mode:
            surface = " ".join(anchor.text.split())
            subject = mention_subject(surface)
            self.mention_classes[surface] = class_name
        else:
            subject = anchor_entity.entity_id
        order_of = {id(node): order for order, node in enumerate(text_nodes)}
        anchor_order = order_of[id(anchor)]
        for order, label in sorted(label_orders.items()):
            value_node = self._value_node(
                text_nodes, order, label_orders, anchor_order
            )
            if value_node is None:
                continue
            value_text = " ".join(value_node.text.split())
            if not value_text:
                continue
            pending.append(
                (
                    (class_name, label.canonical),
                    ScoredTriple(
                        Triple(
                            subject,
                            label.canonical,
                            Value(value_text),
                        ),
                        Provenance(
                            source_id=site.site_id,
                            extractor_id=EXTRACTOR_ID,
                            locator=url,
                        ),
                    ),
                )
            )
        return True, new_count

    # ------------------------------------------------------------------
    def _path(self, anchor: TextNode, node: TextNode) -> RelativeTagPath:
        return relative_path(
            anchor, node, clean=True, with_classes=self.config.with_classes
        )

    def _acceptable_label(self, canonical: str) -> bool:
        """Filter obviously non-attribute label texts."""
        if not canonical:
            return False
        words = canonical.split(" ")
        if len(words) > self.config.max_label_tokens:
            return False
        if any(word.isdigit() for word in words):
            return False
        if len(canonical) > 48:
            return False
        return True

    @staticmethod
    def _heading_node(text_nodes: list[TextNode]) -> TextNode | None:
        """The page-title text node: the first h1/h2 text."""
        for node in text_nodes:
            parent = node.parent
            if parent is not None and parent.tag in ("h1", "h2"):
                return node
        return None

    @staticmethod
    def _value_node(
        text_nodes: list[TextNode],
        label_order: int,
        label_orders: dict[int, "_LabelNode"],
        anchor_order: int,
    ) -> TextNode | None:
        """The value for a label: the next text node in document order
        that is neither another label nor the entity anchor."""
        for offset in (1, 2, 3):
            order = label_order + offset
            if order >= len(text_nodes):
                return None
            if order == anchor_order:
                continue
            if order in label_orders:
                return None  # immediately followed by another label
            return text_nodes[order]
        return None
