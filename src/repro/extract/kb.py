"""Attribute extraction from existing knowledge bases (Sec. 4, Table 2).

The paper combines Freebase and DBpedia: attributes are "first analyzed
separately for both KBs and then combined ... after some preprocessing
(e.g., duplicate removal)".  Operationally:

1. per KB and class, collect the official schema attributes *and* every
   attribute used in the class's instance data (unmapped/raw
   properties) — instance usage is what makes extraction exceed the
   schema count;
2. normalise each KB's naming convention (camelCase, ``class/snake``
   keys) into canonical lower-case names;
3. deduplicate within a KB, then union across KBs (the "Combine"
   column of Table 2).

The extractor also re-emits the KB's instance facts as scored triples
under canonical attribute names, so KB claims participate in fusion.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.extract.base import ExtractorOutput
from repro.rdf.triple import Provenance, ScoredTriple, Triple
from repro.synth.kb_snapshots import KbSnapshot, decamelize
from repro.textproc.normalize import normalize_attribute

EXTRACTOR_ID = "kb"


def canonicalize_kb_name(rendered: str, naming: str) -> str:
    """Invert a KB naming convention into a canonical attribute name."""
    if naming == "camel":
        return normalize_attribute(decamelize(rendered))
    if naming == "snake":
        # Strip the "class/" prefix, then fold underscores.
        bare = rendered.split("/", 1)[-1]
        return normalize_attribute(bare)
    return normalize_attribute(rendered)


class KbExtractor:
    """Extract attributes (and fact claims) from one KB snapshot."""

    def __init__(self, snapshot: KbSnapshot) -> None:
        self.snapshot = snapshot

    def extract(self) -> ExtractorOutput:
        """Run extraction over every class of the snapshot."""
        output = ExtractorOutput(EXTRACTOR_ID)
        snapshot = self.snapshot
        for class_name, view in snapshot.classes.items():
            # Schema attributes count as evidence even without usage.
            for rendered in view.schema_attributes:
                canonical = canonicalize_kb_name(rendered, snapshot.naming)
                output.add_attribute(
                    class_name,
                    canonical,
                    sources={snapshot.kb_id},
                )
            # Instance usage: scan claims of the class's entities.
            entity_ids = {entity.entity_id for entity in view.entities}
            usage: dict[str, set[str]] = {}
            for scored in snapshot.store.claims():
                triple = scored.triple
                if triple.subject not in entity_ids:
                    continue
                canonical = canonicalize_kb_name(
                    triple.predicate, snapshot.naming
                )
                usage.setdefault(canonical, set()).add(triple.subject)
                output.triples.append(
                    ScoredTriple(
                        Triple(triple.subject, canonical, triple.obj),
                        Provenance(
                            source_id=snapshot.kb_id,
                            extractor_id=EXTRACTOR_ID,
                            locator=triple.predicate,
                        ),
                        scored.confidence,
                    )
                )
            for canonical, subjects in usage.items():
                output.add_attribute(
                    class_name,
                    canonical,
                    support=len(subjects),
                    entity_support=len(subjects),
                    sources={snapshot.kb_id},
                )
        return output

    def schema_attribute_names(self, class_name: str) -> set[str]:
        """Canonical names of the class's *official* schema attributes
        (the "original" counts of Table 2)."""
        view = self.snapshot.classes[class_name]
        return {
            canonicalize_kb_name(rendered, self.snapshot.naming)
            for rendered in view.schema_attributes
        }


def combine_kb_outputs(
    outputs: Iterable[ExtractorOutput],
) -> ExtractorOutput:
    """Union per-class attribute extractions from several KBs.

    Canonical names already agree across KBs after normalisation, so
    duplicate removal is the union on canonical names; evidence
    (support, sources) is merged.  Triples are concatenated — fusion,
    not combination, resolves their conflicts.
    """
    combined = ExtractorOutput(EXTRACTOR_ID)
    for output in outputs:
        for class_name, per_class in output.attributes.items():
            for name, record in per_class.items():
                combined.add_attribute(
                    class_name,
                    name,
                    support=record.support,
                    entity_support=record.entity_support,
                    sources=set(record.sources),
                )
        combined.triples.extend(output.triples)
    return combined
