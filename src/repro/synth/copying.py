"""Source-copying scenario generator: plagiarists replicating errors.

Inter-source copying is the central hazard "From Data Fusion to
Knowledge Fusion" names: a clique of sources replicating one victim's
claims makes every shared error look independently confirmed, and
correlation-blind fusion happily promotes it.  A :class:`CopyingWorld`
builds that hazard with full ground truth:

* a pool of honest **independent** sources with individual accuracies;
* one low-accuracy **victim** source;
* configurable **copiers** that replicate a fraction of the victim's
  claims — errors included — with optional per-claim *mutation* (the
  copier garbles what it copied) and optional *lag* (the victim later
  corrects some of its errors, but the copiers replicated the
  pre-correction claims, so the error outlives its origin).

The gold standard records exactly which wrong values the copiers
replicated (``copied_errors``), so an eval can score **copied-error
suppression**: the fraction of replicated errors fusion kept out of
the KB.  Comparing correlation-aware vs correlation-blind fusion on
this world is the on/off table ``Pipeline.run_copying`` renders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.fusion.base import Claim, ClaimSet, Item

__all__ = ["CopyingConfig", "CopyingWorld", "generate_copying_world"]

#: Extractor id stamped on every claim of the copying world.
COPYING_EXTRACTOR = "synthetic"


@dataclass(slots=True)
class CopyingConfig:
    """Parameters of a copying world."""

    seed: int = 0
    n_items: int = 80
    # Honest sources claiming independently.
    n_independent: int = 4
    # Per-independent accuracy; None spreads 0.65..0.9.
    independent_accuracies: list[float] | None = None
    # The victim's accuracy (low: its errors are what copiers spread).
    victim_accuracy: float = 0.5
    n_copiers: int = 3
    # Chance a copier replicates any given victim claim.
    copy_fraction: float = 0.9
    # Chance a replicated claim is garbled into a fresh wrong value.
    mutation_rate: float = 0.05
    # Copier lag: with ``lag > 0`` the victim corrects
    # ``correction_rate`` of its errors *after* the copiers replicated
    # them — the published victim claims are post-correction, the
    # copies are pre-correction, so some copied errors no longer have
    # the victim's own vote.
    lag: int = 0
    correction_rate: float = 0.5
    # Chance any source observes any item.
    coverage: float = 0.75
    # Wrong values available per item.
    false_pool: int = 5
    predicate: str = "attr"

    def validate(self) -> None:
        if self.n_items < 1:
            raise GenerationError("n_items must be >= 1")
        if self.n_independent < 1 or self.n_copiers < 0:
            raise GenerationError(
                "need at least one independent source and >= 0 copiers"
            )
        if not 0 < self.coverage <= 1:
            raise GenerationError("coverage must lie in (0, 1]")
        for name in (
            "victim_accuracy", "copy_fraction", "mutation_rate",
            "correction_rate",
        ):
            rate = getattr(self, name)
            if not 0 <= rate <= 1:
                raise GenerationError(f"{name} must lie in [0, 1]")
        if self.lag < 0:
            raise GenerationError("lag must be >= 0")
        if self.false_pool < 1:
            raise GenerationError("false_pool must be >= 1")


@dataclass(slots=True)
class CopyingWorld:
    """A generated copying regime plus its gold standard."""

    claims: ClaimSet
    truths: dict[Item, set[str]] = field(default_factory=dict)
    victim: str = "victim"
    copiers: tuple[str, ...] = ()
    independents: tuple[str, ...] = ()
    source_accuracy: dict[str, float] = field(default_factory=dict)
    # item -> wrong values at least one copier replicated verbatim
    # from the victim's (pre-correction) claims.
    copied_errors: dict[Item, set[str]] = field(default_factory=dict)

    def total_copied_errors(self) -> int:
        return sum(len(values) for values in self.copied_errors.values())

    def copied_error_outcome(
        self, decided: dict[Item, set[str]]
    ) -> tuple[int, int]:
        """``(suppressed, leaked)`` copied errors under a verdict set.

        A copied error *leaks* when fusion decided it true; otherwise
        it was suppressed.
        """
        suppressed = 0
        leaked = 0
        for item, values in self.copied_errors.items():
            chosen = decided.get(item, set())
            for value in values:
                if value in chosen:
                    leaked += 1
                else:
                    suppressed += 1
        return suppressed, leaked

    def precision_of(self, decided: dict[Item, set[str]]) -> float:
        """Fraction of decided values that are true."""
        total = 0
        correct = 0
        for item, values in decided.items():
            gold = self.truths.get(item, set())
            for value in values:
                total += 1
                if value in gold:
                    correct += 1
        return correct / total if total else 0.0

    def recall_of(self, decided: dict[Item, set[str]]) -> float:
        """Fraction of gold truths that were decided."""
        total = 0
        correct = 0
        for item, gold in self.truths.items():
            for value in gold:
                total += 1
                if value in decided.get(item, set()):
                    correct += 1
        return correct / total if total else 0.0


def generate_copying_world(
    config: CopyingConfig | None = None,
) -> CopyingWorld:
    """Build a copying world per the configuration."""
    cfg = config or CopyingConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)

    accuracies = cfg.independent_accuracies
    if accuracies is None:
        accuracies = [
            0.65 + 0.25 * index / max(1, cfg.n_independent - 1)
            for index in range(cfg.n_independent)
        ]
    independents = [
        f"indep{index:02d}" for index in range(cfg.n_independent)
    ]
    copiers = [f"copier{index:02d}" for index in range(cfg.n_copiers)]

    world = CopyingWorld(
        ClaimSet(),
        copiers=tuple(copiers),
        independents=tuple(independents),
    )
    for index, source in enumerate(independents):
        world.source_accuracy[source] = accuracies[index % len(accuracies)]
    world.source_accuracy[world.victim] = cfg.victim_accuracy
    for copier in copiers:
        world.source_accuracy[copier] = cfg.victim_accuracy

    items: list[Item] = []
    falses_of: dict[Item, list[str]] = {}
    for index in range(cfg.n_items):
        item: Item = (f"entity{index:03d}", cfg.predicate)
        items.append(item)
        world.truths[item] = {f"true-{index:03d}"}
        falses_of[item] = [
            f"false-{index:03d}-{f}" for f in range(cfg.false_pool)
        ]

    def emit(source: str, item: Item, value: str) -> None:
        world.claims.add(
            Claim(
                item=item,
                value=value,
                lexical=value,
                source_id=source,
                extractor_id=COPYING_EXTRACTOR,
                confidence=1.0,
            )
        )

    # Independent sources observe honestly (per accuracy).
    for source in independents:
        accuracy = world.source_accuracy[source]
        for item in items:
            if rng.random() > cfg.coverage:
                continue
            (truth,) = world.truths[item]
            value = (
                truth if rng.random() < accuracy
                else rng.choice(falses_of[item])
            )
            emit(source, item, value)

    # The victim's original observations — the corpus the copiers see.
    original: list[tuple[Item, str]] = []
    for item in items:
        if rng.random() > cfg.coverage:
            continue
        (truth,) = world.truths[item]
        value = (
            truth if rng.random() < cfg.victim_accuracy
            else rng.choice(falses_of[item])
        )
        original.append((item, value))

    # With lag, the victim corrects some errors *after* the copiers
    # took their copy; the victim publishes the corrected claims.
    published = list(original)
    if cfg.lag > 0:
        for position, (item, value) in enumerate(original):
            (truth,) = world.truths[item]
            if value != truth and rng.random() < cfg.correction_rate:
                published[position] = (item, truth)
    for item, value in published:
        emit(world.victim, item, value)

    # Copiers replicate the pre-correction corpus, errors included.
    for copier in copiers:
        for item, value in original:
            if rng.random() > cfg.copy_fraction:
                continue
            copied = value
            if rng.random() < cfg.mutation_rate:
                copied = rng.choice(falses_of[item])
            emit(copier, item, copied)
            (truth,) = world.truths[item]
            if copied == value and copied != truth:
                world.copied_errors.setdefault(item, set()).add(copied)

    if not len(world.claims):
        raise GenerationError(
            "copying world produced no claims; raise coverage or n_items"
        )
    return world
