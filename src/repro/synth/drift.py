"""Temporal-drift scenario generator: ground truth that moves.

The static claim worlds evaluate fusion against a truth frozen at
generation time; real corpora drift — facts change, entities appear
and disappear, attributes get renamed.  A :class:`DriftingWorld` makes
that drift a first-class, seeded object: epoch 0 fixes an initial
truth and a noisy base claim corpus, then every later epoch mutates
the truth (value changes, births, deaths, attribute renames) and emits
the corresponding source observations as one
:class:`~repro.incremental.delta.ClaimDelta` — retract the stale
claims, add fresh observations of the new truth.  Feeding the epoch
deltas through ``Pipeline.run_incremental`` / ``Pipeline.serve`` runs
the whole incremental + serving stack against truth that moves, and
:mod:`repro.evalx.freshness` scores every served version against the
truth *of its own epoch* versus the *current* truth (freshness lag /
staleness — the uncertainty dimension the Jarnac survey calls out).

Everything is a pure function of :class:`DriftConfig`: the same seed
yields a byte-identical base corpus, delta stream and epoch-truth
sequence (pinned by ``tests/property/test_prop_drift.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.incremental.delta import ClaimDelta
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value

__all__ = ["DriftConfig", "DriftEpoch", "DriftingWorld", "EpochTruth"]

Item = tuple[str, str]

#: Extractor id stamped on every drift observation.
DRIFT_EXTRACTOR = "drift"


@dataclass(slots=True)
class DriftConfig:
    """Parameters of a drifting world."""

    seed: int = 0
    # Entities alive at epoch 0.
    n_items: int = 40
    n_sources: int = 6
    # Mutation epochs after the base epoch (the delta stream length).
    epochs: int = 5
    # Chance a source observes an item each time it is (re)emitted.
    coverage: float = 0.85
    # Per-source accuracy; None spreads 0.6..0.95 over the sources.
    source_accuracies: list[float] | None = None
    # Per epoch: fraction of surviving items whose true value changes.
    value_change_rate: float = 0.25
    # Per epoch: new items, as a fraction of the initial population.
    birth_rate: float = 0.10
    # Per epoch: fraction of live items retired (never all of them).
    death_rate: float = 0.05
    # Per epoch: fraction of surviving items whose attribute is renamed.
    rename_rate: float = 0.05
    # Wrong values available per item.
    false_pool: int = 4
    # Base attribute name (renames derive ``attr~r<epoch>`` from it).
    predicate: str = "attr"

    def validate(self) -> None:
        if self.n_items < 1 or self.n_sources < 1:
            raise GenerationError("items and sources must be >= 1")
        if self.epochs < 1:
            raise GenerationError("epochs must be >= 1")
        if not 0 < self.coverage <= 1:
            raise GenerationError("coverage must lie in (0, 1]")
        for name in (
            "value_change_rate", "birth_rate", "death_rate", "rename_rate"
        ):
            rate = getattr(self, name)
            if not 0 <= rate <= 1:
                raise GenerationError(f"{name} must lie in [0, 1]")
        if self.false_pool < 1:
            raise GenerationError("false_pool must be >= 1")


@dataclass(frozen=True, slots=True)
class EpochTruth:
    """The ground truth at one epoch, plus what changed to reach it.

    ``truths`` maps every live item to its (single) true value at this
    epoch.  The event tuples record the epoch's mutations: ``born`` /
    ``died`` are subjects, ``renamed`` is ``(subject, old_predicate,
    new_predicate)`` and ``changed`` is ``(subject, old_value,
    new_value)``.  Epoch 0 has no events.
    """

    epoch: int
    truths: dict[Item, set[str]]
    born: tuple[str, ...] = ()
    died: tuple[str, ...] = ()
    renamed: tuple[tuple[str, str, str], ...] = ()
    changed: tuple[tuple[str, str, str], ...] = ()

    def to_json_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "items": len(self.truths),
            "truths": {
                f"{subject}|{predicate}": sorted(values)
                for (subject, predicate), values in sorted(
                    self.truths.items()
                )
            },
            "born": list(self.born),
            "died": list(self.died),
            "renamed": [list(event) for event in self.renamed],
            "changed": [list(event) for event in self.changed],
        }


@dataclass(frozen=True, slots=True)
class DriftEpoch:
    """One mutation epoch: the new truth and the delta that reports it."""

    truth: EpochTruth
    delta: ClaimDelta


@dataclass(slots=True)
class _ItemState:
    """One live entity: its current attribute, truth and live claims."""

    subject: str
    predicate: str
    index: int
    generation: int = 0
    claimed: list[Triple] = field(default_factory=list)

    @property
    def item(self) -> Item:
        return (self.subject, self.predicate)

    def truth(self) -> str:
        return f"val-{self.index:03d}-g{self.generation}"

    def falses(self, pool: int) -> list[str]:
        return [f"bad-{self.index:03d}-{f}" for f in range(pool)]


class DriftingWorld:
    """A seeded world whose truth mutates over epochs.

    Construction precomputes everything: ``base`` (the epoch-0 claim
    corpus), ``epochs`` (one :class:`DriftEpoch` per mutation epoch,
    in order) and the per-epoch truth snapshots reachable via
    :meth:`truth_at`.  Prime a store/engine on ``base``, then apply
    ``epochs[k].delta`` in order; after ``k`` applied deltas the
    engine's state corresponds to epoch ``k``'s truth.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self.config.validate()
        cfg = self.config
        rng = random.Random(cfg.seed)

        accuracies = cfg.source_accuracies
        if accuracies is None:
            accuracies = [
                0.6 + 0.35 * index / max(1, cfg.n_sources - 1)
                for index in range(cfg.n_sources)
            ]
        self.sources = [
            f"source{index:02d}" for index in range(cfg.n_sources)
        ]
        self.source_accuracy = {
            source: accuracies[index % len(accuracies)]
            for index, source in enumerate(self.sources)
        }

        self._states: dict[str, _ItemState] = {}
        self._next_index = 0
        self.base: list[ScoredTriple] = []
        self.epochs: list[DriftEpoch] = []
        self._truths: list[dict[Item, set[str]]] = []

        for _ in range(cfg.n_items):
            state = self._spawn()
            self.base.extend(self._observe(state, rng))
        if not self.base:
            raise GenerationError(
                "drift base corpus is empty; raise coverage or n_items"
            )
        self._truths.append(self._snapshot())

        for epoch in range(1, cfg.epochs + 1):
            self.epochs.append(self._mutate(epoch, rng))
            self._truths.append(self._snapshot())

    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        """The newest epoch index (== number of deltas)."""
        return len(self.epochs)

    def truth_at(self, epoch: int) -> dict[Item, set[str]]:
        """The ground truth after ``epoch`` deltas (0 = base truth)."""
        return self._truths[epoch]

    def deltas(self) -> list[ClaimDelta]:
        return [drift_epoch.delta for drift_epoch in self.epochs]

    # ------------------------------------------------------------------
    def _spawn(self) -> _ItemState:
        index = self._next_index
        self._next_index += 1
        state = _ItemState(
            subject=f"entity{index:03d}",
            predicate=self.config.predicate,
            index=index,
        )
        self._states[state.subject] = state
        return state

    def _observe(
        self, state: _ItemState, rng: random.Random
    ) -> list[ScoredTriple]:
        """Every source's (noisy) claim about one item's current truth.

        Appends the claimed triples to the state's live-claim list so a
        later mutation can retract exactly what is in the store.
        """
        cfg = self.config
        truth = state.truth()
        falses = state.falses(cfg.false_pool)
        observed: list[ScoredTriple] = []
        fresh: set[Triple] = set(state.claimed)
        for source in self.sources:
            if rng.random() > cfg.coverage:
                continue
            value = (
                truth
                if rng.random() < self.source_accuracy[source]
                else rng.choice(falses)
            )
            triple = Triple(
                state.subject, state.predicate, Value.string(value)
            )
            observed.append(
                ScoredTriple(
                    triple, Provenance(source, DRIFT_EXTRACTOR), 1.0
                )
            )
            if triple not in fresh:
                fresh.add(triple)
                state.claimed.append(triple)
        return observed

    def _retract_all(self, state: _ItemState) -> list[Triple]:
        """Drop (and return) every live claimed triple of one item."""
        retracted = state.claimed
        state.claimed = []
        return retracted

    def _snapshot(self) -> dict[Item, set[str]]:
        return {
            state.item: {state.truth()}
            for state in self._states.values()
        }

    def _mutate(self, epoch: int, rng: random.Random) -> DriftEpoch:
        """One epoch of drift: sample events, emit the matching delta."""
        cfg = self.config
        alive = sorted(self._states)

        n_deaths = min(
            int(round(cfg.death_rate * len(alive))), len(alive) - 1
        )
        died = rng.sample(alive, n_deaths) if n_deaths > 0 else []
        survivors = [subject for subject in alive if subject not in set(died)]

        n_renames = int(round(cfg.rename_rate * len(survivors)))
        renamed = rng.sample(survivors, n_renames) if n_renames else []
        remaining = [
            subject for subject in survivors if subject not in set(renamed)
        ]

        n_changes = int(round(cfg.value_change_rate * len(remaining)))
        changed = rng.sample(remaining, n_changes) if n_changes else []

        n_births = int(round(cfg.birth_rate * cfg.n_items))

        retracted: list[Triple] = []
        added: list[ScoredTriple] = []
        rename_events: list[tuple[str, str, str]] = []
        change_events: list[tuple[str, str, str]] = []

        for subject in died:
            retracted.extend(self._retract_all(self._states.pop(subject)))

        for subject in renamed:
            state = self._states[subject]
            old_predicate = state.predicate
            retracted.extend(self._retract_all(state))
            state.predicate = f"{cfg.predicate}~r{epoch}"
            rename_events.append((subject, old_predicate, state.predicate))
            added.extend(self._observe(state, rng))

        for subject in changed:
            state = self._states[subject]
            old_value = state.truth()
            retracted.extend(self._retract_all(state))
            state.generation += 1
            change_events.append((subject, old_value, state.truth()))
            added.extend(self._observe(state, rng))

        born: list[str] = []
        for _ in range(n_births):
            state = self._spawn()
            born.append(state.subject)
            added.extend(self._observe(state, rng))

        if not any(state.claimed for state in self._states.values()):
            raise GenerationError(
                f"epoch {epoch} would leave the claim store empty; "
                "lower the mutation rates or raise coverage"
            )
        truth = EpochTruth(
            epoch=epoch,
            truths=self._snapshot(),
            born=tuple(born),
            died=tuple(died),
            renamed=tuple(rename_events),
            changed=tuple(change_events),
        )
        delta = ClaimDelta(
            added=added, retracted=retracted, label=f"epoch-{epoch}"
        )
        return DriftEpoch(truth=truth, delta=delta)
