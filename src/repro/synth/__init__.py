"""Synthetic data substrate: the ground-truth world and every generated
source (KB snapshots, query streams, websites, Web-text corpora)."""

from repro.synth.claims import (
    ClaimWorld,
    ClaimWorldConfig,
    generate_claim_world,
)
from repro.synth.copying import (
    CopyingConfig,
    CopyingWorld,
    generate_copying_world,
)
from repro.synth.drift import (
    DriftConfig,
    DriftEpoch,
    DriftingWorld,
    EpochTruth,
)
from repro.synth.catalog import (
    CLASS_NAMES,
    DEFAULT_UNIVERSE_SIZES,
    AttributeSpec,
    ClassCatalog,
    build_all_catalogs,
    build_catalog,
    generate_locations,
)
from repro.synth.kb_snapshots import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    KbPairConfig,
    KbSnapshot,
    RepresentativeKbConfig,
    build_kb_pair,
    build_representative_snapshots,
    decamelize,
    render_name,
)
from repro.synth.querylog import (
    PAPER_TABLE3_RELEVANT,
    PAPER_TOTAL_RECORDS,
    QueryLogConfig,
    QueryRecord,
    generate_query_log,
)
from repro.synth.websites import (
    GoldMention,
    WebPage,
    Website,
    WebsiteConfig,
    generate_websites,
)
from repro.synth.webtext import (
    GoldFact,
    TextDocument,
    WebTextConfig,
    generate_webtext,
)
from repro.synth.world import GroundTruthWorld, WorldConfig

__all__ = [
    "CLASS_NAMES",
    "ClaimWorld",
    "ClaimWorldConfig",
    "generate_claim_world",
    "DEFAULT_UNIVERSE_SIZES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3_RELEVANT",
    "PAPER_TOTAL_RECORDS",
    "AttributeSpec",
    "ClassCatalog",
    "CopyingConfig",
    "CopyingWorld",
    "DriftConfig",
    "DriftEpoch",
    "DriftingWorld",
    "EpochTruth",
    "GoldFact",
    "GoldMention",
    "GroundTruthWorld",
    "KbPairConfig",
    "KbSnapshot",
    "QueryLogConfig",
    "QueryRecord",
    "RepresentativeKbConfig",
    "TextDocument",
    "WebPage",
    "Website",
    "WebsiteConfig",
    "WebTextConfig",
    "WorldConfig",
    "build_all_catalogs",
    "build_catalog",
    "build_kb_pair",
    "build_representative_snapshots",
    "decamelize",
    "generate_copying_world",
    "generate_locations",
    "generate_query_log",
    "generate_websites",
    "generate_webtext",
    "render_name",
]
