"""Per-class attribute catalogs and value vocabularies.

The paper evaluates five representative Freebase classes: Book, Film,
Country, University and Hotel (Tables 2 and 3).  For each class this
module defines an *attribute universe*: a curated core of realistic
attribute names plus deterministically generated extensions, large
enough to cover the per-class attribute counts the paper reports
(e.g. 518 combined attributes for University).

The universe is the ground-truth schema space; KB snapshots, query
streams, websites and text corpora all draw their attributes from it,
which is what makes cross-source extraction and fusion meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GenerationError
from repro.rdf.hierarchy import ValueHierarchy
from repro.rdf.triple import ValueKind
from repro.synth import names

CLASS_NAMES = ("Book", "Film", "Country", "University", "Hotel")


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """Ground-truth description of one attribute in a class universe.

    ``query_propensity`` controls how often the attribute appears in
    attribute-intent queries (Table 3's extraction source);
    ``web_propensity`` controls how often websites/texts mention it.
    """

    name: str
    functional: bool = True
    value_kind: ValueKind = ValueKind.STRING
    hierarchical: bool = False
    query_propensity: float = 0.5
    web_propensity: float = 0.7


# Curated attribute cores.  Names are lower-case, space-separated, as
# produced by repro.textproc.normalize.normalize_attribute.
_CORE: dict[str, list[AttributeSpec]] = {
    "Book": [
        AttributeSpec("author", True, ValueKind.STRING, False, 0.9, 0.95),
        AttributeSpec("publication date", True, ValueKind.DATE, False, 0.7, 0.9),
        AttributeSpec("publisher", True, ValueKind.STRING, False, 0.6, 0.85),
        AttributeSpec("genre", False, ValueKind.STRING, False, 0.7, 0.8),
        AttributeSpec("number of pages", True, ValueKind.NUMBER, False, 0.5, 0.8),
        AttributeSpec("language", True, ValueKind.STRING, False, 0.5, 0.7),
        AttributeSpec("isbn", True, ValueKind.STRING, False, 0.4, 0.8),
        AttributeSpec("setting", False, ValueKind.STRING, True, 0.3, 0.5),
        AttributeSpec("protagonist", False, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("series", True, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("translator", False, ValueKind.STRING, False, 0.2, 0.4),
        AttributeSpec("edition", True, ValueKind.STRING, False, 0.2, 0.4),
        AttributeSpec("cover artist", True, ValueKind.STRING, False, 0.1, 0.3),
        AttributeSpec("dedication", True, ValueKind.STRING, False, 0.1, 0.2),
        AttributeSpec("price", True, ValueKind.NUMBER, False, 0.5, 0.6),
    ],
    "Film": [
        AttributeSpec("director", True, ValueKind.STRING, False, 0.9, 0.95),
        AttributeSpec("release date", True, ValueKind.DATE, False, 0.8, 0.9),
        AttributeSpec("cast", False, ValueKind.STRING, False, 0.8, 0.9),
        AttributeSpec("genre", False, ValueKind.STRING, False, 0.7, 0.8),
        AttributeSpec("running time", True, ValueKind.NUMBER, False, 0.5, 0.8),
        AttributeSpec("budget", True, ValueKind.NUMBER, False, 0.5, 0.6),
        AttributeSpec("box office", True, ValueKind.NUMBER, False, 0.6, 0.6),
        AttributeSpec("producer", False, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("screenwriter", False, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("composer", True, ValueKind.STRING, False, 0.3, 0.5),
        AttributeSpec("filming location", False, ValueKind.STRING, True, 0.4, 0.5),
        AttributeSpec("rating", True, ValueKind.STRING, False, 0.6, 0.7),
        AttributeSpec("language", True, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("studio", True, ValueKind.STRING, False, 0.3, 0.5),
        AttributeSpec("sequel", True, ValueKind.STRING, False, 0.3, 0.3),
    ],
    "Country": [
        AttributeSpec("capital", True, ValueKind.STRING, True, 0.9, 0.95),
        AttributeSpec("population", True, ValueKind.NUMBER, False, 0.9, 0.95),
        AttributeSpec("area", True, ValueKind.NUMBER, False, 0.6, 0.85),
        AttributeSpec("currency", True, ValueKind.STRING, False, 0.7, 0.85),
        AttributeSpec("official language", False, ValueKind.STRING, False, 0.7, 0.85),
        AttributeSpec("president", True, ValueKind.STRING, False, 0.8, 0.8),
        AttributeSpec("prime minister", True, ValueKind.STRING, False, 0.6, 0.7),
        AttributeSpec("gdp", True, ValueKind.NUMBER, False, 0.6, 0.7),
        AttributeSpec("national anthem", True, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("national flower", True, ValueKind.STRING, False, 0.3, 0.4),
        AttributeSpec("calling code", True, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("time zone", False, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("largest city", True, ValueKind.STRING, True, 0.5, 0.7),
        AttributeSpec("continent", True, ValueKind.STRING, False, 0.5, 0.7),
        AttributeSpec("independence day", True, ValueKind.DATE, False, 0.4, 0.5),
        AttributeSpec("life expectancy", True, ValueKind.NUMBER, False, 0.4, 0.5),
        AttributeSpec("literacy rate", True, ValueKind.NUMBER, False, 0.3, 0.5),
        AttributeSpec("climate", False, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("religion", False, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("neighboring country", False, ValueKind.STRING, False, 0.3, 0.5),
    ],
    "University": [
        AttributeSpec("chancellor", True, ValueKind.STRING, False, 0.6, 0.8),
        AttributeSpec("location", True, ValueKind.STRING, True, 0.7, 0.9),
        AttributeSpec("founded", True, ValueKind.DATE, False, 0.6, 0.85),
        AttributeSpec("enrollment", True, ValueKind.NUMBER, False, 0.6, 0.8),
        AttributeSpec("motto", True, ValueKind.STRING, False, 0.4, 0.6),
        AttributeSpec("tuition", True, ValueKind.NUMBER, False, 0.8, 0.7),
        AttributeSpec("acceptance rate", True, ValueKind.NUMBER, False, 0.7, 0.6),
        AttributeSpec("ranking", True, ValueKind.NUMBER, False, 0.8, 0.7),
        AttributeSpec("campus size", True, ValueKind.NUMBER, False, 0.3, 0.5),
        AttributeSpec("mascot", True, ValueKind.STRING, False, 0.4, 0.5),
        AttributeSpec("colors", False, ValueKind.STRING, False, 0.3, 0.5),
        AttributeSpec("faculty count", True, ValueKind.NUMBER, False, 0.3, 0.5),
        AttributeSpec("notable alumni", False, ValueKind.STRING, False, 0.5, 0.6),
        AttributeSpec("library", False, ValueKind.STRING, False, 0.2, 0.4),
        AttributeSpec("endowment", True, ValueKind.NUMBER, False, 0.4, 0.5),
    ],
    "Hotel": [
        AttributeSpec("location", True, ValueKind.STRING, True, 0.3, 0.9),
        AttributeSpec("star rating", True, ValueKind.NUMBER, False, 0.3, 0.85),
        AttributeSpec("number of rooms", True, ValueKind.NUMBER, False, 0.2, 0.8),
        AttributeSpec("check in time", True, ValueKind.STRING, False, 0.2, 0.7),
        AttributeSpec("check out time", True, ValueKind.STRING, False, 0.2, 0.7),
        AttributeSpec("amenities", False, ValueKind.STRING, False, 0.2, 0.7),
        AttributeSpec("room rate", True, ValueKind.NUMBER, False, 0.3, 0.7),
        AttributeSpec("parking", True, ValueKind.STRING, False, 0.1, 0.6),
        AttributeSpec("pet policy", True, ValueKind.STRING, False, 0.1, 0.5),
        AttributeSpec("restaurant", False, ValueKind.STRING, False, 0.1, 0.5),
        AttributeSpec("opened", True, ValueKind.DATE, False, 0.1, 0.5),
        AttributeSpec("owner", True, ValueKind.STRING, False, 0.1, 0.4),
    ],
}

# Nouns used to mint extension attributes, per class.
_EXTENSION_NOUNS: dict[str, list[str]] = {
    "Book": [
        "chapter", "reprint", "review", "award", "illustration", "appendix",
        "preface", "paperback", "hardcover", "audiobook", "royalty",
        "manuscript", "footnote", "glossary", "anthology", "foreword",
    ],
    "Film": [
        "scene", "trailer", "premiere", "award", "stunt", "soundtrack",
        "costume", "reel", "subtitle", "screening", "remake", "poster",
        "cameo", "franchise", "script", "casting",
    ],
    "Country": [
        "export", "import", "province", "river", "border", "railway",
        "highway", "airport", "harbor", "festival", "tax", "election",
        "embassy", "ministry", "census", "forest", "island", "lake",
        "mountain", "museum", "newspaper", "parliament", "pension",
        "tariff", "tourism", "treaty", "university", "visa", "volcano",
        "wage",
    ],
    "University": [
        "department", "laboratory", "professor", "scholarship", "dormitory",
        "lecture", "seminar", "institute", "fellowship", "dean", "campus",
        "stadium", "journal", "grant", "thesis", "graduate", "alumni",
        "archive", "chapel", "clinic", "college", "course", "degree",
        "exchange", "faculty", "gallery", "museum", "observatory",
        "press", "union",
    ],
    "Hotel": [
        "suite", "spa", "gym", "pool", "lounge", "banquet", "concierge",
        "shuttle", "minibar", "balcony", "terrace", "ballroom", "buffet",
        "laundry", "valet", "wifi",
    ],
}

# Templates used to mint extension attribute names from nouns.
_EXTENSION_TEMPLATES = [
    "number of {noun}s",
    "{noun} count",
    "{noun} policy",
    "{noun} fee",
    "annual {noun} budget",
    "{noun} capacity",
    "main {noun}",
    "largest {noun}",
    "oldest {noun}",
    "{noun} rating",
    "{noun} name",
    "total {noun} revenue",
    "{noun} schedule",
    "{noun} history",
    "famous {noun}",
    "official {noun}",
    "first {noun}",
    "per capita {noun}",
    "{noun} director",
    "{noun} address",
]

# Default universe sizes, chosen to exceed the paper's per-class
# combined attribute counts (Table 2: up to 518 for University).
DEFAULT_UNIVERSE_SIZES: dict[str, int] = {
    "Book": 140,
    "Film": 180,
    "Country": 620,
    "University": 640,
    "Hotel": 330,
}


@dataclass(frozen=True, slots=True)
class ClassCatalog:
    """The attribute universe of one class."""

    class_name: str
    attributes: tuple[AttributeSpec, ...]

    def spec(self, name: str) -> AttributeSpec:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise GenerationError(
            f"class {self.class_name!r} has no attribute {name!r}"
        )

    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)


def build_catalog(
    class_name: str,
    rng: random.Random,
    universe_size: int | None = None,
) -> ClassCatalog:
    """Build the attribute universe for one of the five classes.

    The curated core comes first; extension attributes are minted from
    class-specific nouns and templates until the universe size is
    reached.  Extension attributes get lower query/web propensities
    than core ones (long-tail behaviour).
    """
    if class_name not in _CORE:
        raise GenerationError(f"unknown class {class_name!r}")
    size = universe_size or DEFAULT_UNIVERSE_SIZES[class_name]
    core = list(_CORE[class_name])
    if size < len(core):
        return ClassCatalog(class_name, tuple(core[:size]))

    seen = {spec.name for spec in core}
    extensions: list[AttributeSpec] = []
    nouns = list(_EXTENSION_NOUNS[class_name])
    # Extend the noun pool with invented words when templates x curated
    # nouns cannot reach the requested universe size.
    needed = size - len(core)
    while len(nouns) * len(_EXTENSION_TEMPLATES) < needed * 2:
        nouns.append(names.invented_word(rng, 2).lower())

    combos = [
        (template, noun) for noun in nouns for template in _EXTENSION_TEMPLATES
    ]
    rng.shuffle(combos)
    for template, noun in combos:
        if len(extensions) >= needed:
            break
        name = template.format(noun=noun)
        if name in seen:
            continue
        seen.add(name)
        extensions.append(
            AttributeSpec(
                name=name,
                functional=rng.random() < 0.8,
                value_kind=(
                    ValueKind.NUMBER
                    if template.startswith(("number", "total", "per capita"))
                    or "count" in template
                    or "fee" in template
                    or "capacity" in template
                    else ValueKind.STRING
                ),
                hierarchical=False,
                query_propensity=rng.uniform(0.01, 0.25),
                web_propensity=rng.uniform(0.05, 0.45),
            )
        )
    if len(extensions) < needed:
        raise GenerationError(
            f"could not mint {needed} extension attributes for {class_name!r}"
        )
    return ClassCatalog(class_name, tuple(core + extensions))


def build_all_catalogs(
    rng: random.Random,
    universe_sizes: dict[str, int] | None = None,
) -> dict[str, ClassCatalog]:
    """Catalogs for all five representative classes."""
    sizes = dict(DEFAULT_UNIVERSE_SIZES)
    if universe_sizes:
        sizes.update(universe_sizes)
    return {
        class_name: build_catalog(class_name, rng, sizes[class_name])
        for class_name in CLASS_NAMES
    }


def generate_locations(
    rng: random.Random,
    countries: int = 12,
    regions_per_country: int = 4,
    cities_per_region: int = 5,
) -> tuple[ValueHierarchy, list[str]]:
    """Generate a three-level location hierarchy.

    Returns the hierarchy plus the list of leaf city names; hierarchical
    attribute values are drawn from the leaves so fusion can reason up
    the chain (city → region → country).
    """
    if countries < 1 or regions_per_country < 1 or cities_per_region < 1:
        raise GenerationError("location hierarchy sizes must be positive")
    hierarchy = ValueHierarchy()
    cities: list[str] = []
    used: set[str] = set()

    def fresh(maker) -> str:
        for _ in range(1000):
            candidate = maker(rng)
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise GenerationError("name space exhausted generating locations")

    for _ in range(countries):
        country = fresh(names.country_name)
        for _ in range(regions_per_country):
            region = fresh(names.place_name)
            hierarchy.add_edge(region, country)
            for _ in range(cities_per_region):
                city = fresh(names.place_name)
                hierarchy.add_edge(city, region)
                cities.append(city)
    return hierarchy, cities
