"""Synthetic delta streams for the incremental-fusion experiments.

Takes the claim corpus of a :func:`~repro.synth.claims.generate_claim_world`
world and replays it as a *base* batch followed by a stream of
:class:`~repro.incremental.delta.ClaimDelta` batches — new claims
arriving, earlier triples being retracted, and some retracted triples
re-appearing later.  The split is seeded, so the property tests can
assert the incremental engine's byte-identity contract across many
random (base, delta₁, delta₂, …) decompositions of the same corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GenerationError
from repro.fusion.base import Claim
from repro.incremental.delta import ClaimDelta
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value

__all__ = [
    "DeltaStreamConfig",
    "generate_delta_stream",
    "scored_from_claims",
]


def scored_from_claims(claims) -> list[ScoredTriple]:
    """Convert fusion :class:`Claim` objects back into scored triples.

    The synthetic claim worlds produce claims directly; the incremental
    subsystem journals scored triples through the store.  The mapping
    is lossless for fusion purposes: item → (subject, predicate),
    lexical → string-valued object, source/extractor → provenance.
    """
    scored: list[ScoredTriple] = []
    for claim in claims:
        if not isinstance(claim, Claim):
            raise GenerationError(
                f"expected fusion Claim, got {type(claim).__name__}"
            )
        scored.append(
            ScoredTriple(
                Triple(
                    claim.item[0],
                    claim.item[1],
                    Value.string(claim.lexical),
                ),
                Provenance(claim.source_id, claim.extractor_id),
                claim.confidence,
            )
        )
    return scored


@dataclass(slots=True)
class DeltaStreamConfig:
    """Parameters of a synthetic (base, deltas) decomposition."""

    seed: int = 0
    # How many deltas the non-base remainder is split into.
    parts: int = 3
    # Fraction of the (shuffled) corpus that forms the base batch.
    base_fraction: float = 0.5
    # Per delta: retractions as a fraction of that delta's additions.
    retract_fraction: float = 0.1
    # Fraction of each delta's retractions re-added by the next delta.
    readd_fraction: float = 0.5

    def validate(self) -> None:
        if self.parts < 1:
            raise GenerationError("parts must be >= 1")
        if not 0 < self.base_fraction < 1:
            raise GenerationError("base_fraction must lie in (0, 1)")
        if not 0 <= self.retract_fraction < 1:
            raise GenerationError("retract_fraction must lie in [0, 1)")
        if not 0 <= self.readd_fraction <= 1:
            raise GenerationError("readd_fraction must lie in [0, 1]")


def generate_delta_stream(
    scored: list[ScoredTriple],
    config: DeltaStreamConfig | None = None,
) -> tuple[list[ScoredTriple], list[ClaimDelta]]:
    """Split a claim corpus into a base batch plus a delta stream.

    Returns ``(base, deltas)``: prime a store on ``base``, then apply
    each delta in order.  Deltas interleave additions (fresh chunks of
    the shuffled corpus, plus re-adds of previously retracted triples)
    with retractions sampled from the triples live at that point.
    """
    cfg = config or DeltaStreamConfig()
    cfg.validate()
    if not scored:
        raise GenerationError("cannot split an empty claim corpus")
    rng = random.Random(cfg.seed)
    pool = list(scored)
    rng.shuffle(pool)

    n_base = max(1, int(len(pool) * cfg.base_fraction))
    base = pool[:n_base]
    rest = pool[n_base:]
    chunk = -(-len(rest) // cfg.parts) if rest else 0  # ceil division

    claims_of: dict[Triple, list[ScoredTriple]] = {}
    for one in pool:
        claims_of.setdefault(one.triple, []).append(one)

    # Triples currently live, in first-application order (a list so
    # rng.sample stays deterministic).  Retractions tombstone their
    # slot (O(1) via the position index) instead of list.remove (O(n)
    # per retraction — quadratic over long, churny streams); skipping
    # the holes preserves exactly the relative order list.remove kept,
    # so the streams stay byte-identical (pinned in
    # tests/unit/test_synth_deltas.py).  The list is compacted in
    # place, order-preserving, once holes outnumber live entries.
    live: list[Triple | None] = []
    position: dict[Triple, int] = {}

    def note(added: list[ScoredTriple]) -> None:
        for one in added:
            if one.triple not in position:
                position[one.triple] = len(live)
                live.append(one.triple)

    def retract(triple: Triple) -> None:
        live[position.pop(triple)] = None

    def compact() -> None:
        if len(live) <= 2 * len(position):
            return
        live[:] = [triple for triple in live if triple is not None]
        position.clear()
        position.update(
            (triple, index) for index, triple in enumerate(live)
        )

    note(base)
    deltas: list[ClaimDelta] = []
    pending_readds: list[ScoredTriple] = []
    for index in range(cfg.parts):
        additions = (
            rest[index * chunk:(index + 1) * chunk] if chunk else []
        )
        additions = list(additions) + pending_readds
        pending_readds = []

        added_triples = {one.triple for one in additions}
        candidates = [
            triple
            for triple in live
            if triple is not None and triple not in added_triples
        ]
        wanted = int(round(cfg.retract_fraction * len(additions)))
        # Never retract the whole store.
        wanted = min(wanted, len(candidates), max(0, len(position) - 1))
        retractions = rng.sample(candidates, wanted) if wanted else []
        for triple in retractions:
            retract(triple)
        compact()

        readd = int(round(cfg.readd_fraction * len(retractions)))
        for triple in retractions[:readd]:
            pending_readds.extend(claims_of[triple])

        deltas.append(
            ClaimDelta(
                added=additions,
                retracted=retractions,
                label=f"delta-{index}",
            )
        )
        note(additions)
    return base, deltas
