"""Synthetic Web-text corpus.

The Web-text extractor learns lexical patterns from sentences that
realise a known seed fact, then applies the learned patterns to harvest
new triples.  The generator therefore emits prose documents in which
facts are realised through a small family of natural sentence shapes
("The A of E is V.", "E's A is V.", "V is the A of E.") interleaved
with distractor sentences, across several text sources with different
error rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GenerationError
from repro.synth import names
from repro.synth.noise import corrupt_value
from repro.synth.world import GroundTruthWorld

_FACT_TEMPLATES = [
    "The {attribute} of {entity} is {value}.",
    "{entity}'s {attribute} is {value}.",
    "{value} is the {attribute} of {entity}.",
    "{entity} has a {attribute} of {value}.",
]

_DISTRACTOR_TEMPLATES = [
    "Many readers visited the {word} exhibition last year.",
    "Experts continue to debate the influence of {word}.",
    "A new report about {word} appeared in 2014.",
    "The festival of {word} attracted thousands of visitors.",
    "Little is known about the early history of {word}.",
]


@dataclass(frozen=True, slots=True)
class GoldFact:
    """Gold annotation: one fact sentence inside a document."""

    entity_id: str
    attribute: str
    value: str
    value_is_true: bool
    template_index: int


@dataclass(slots=True)
class TextDocument:
    """One generated prose document from a text source."""

    doc_id: str
    source_id: str
    class_name: str
    text: str
    gold: tuple[GoldFact, ...]


@dataclass(slots=True)
class WebTextConfig:
    """Generation parameters for the text corpus."""

    seed: int = 29
    sources_per_class: int = 3
    documents_per_source: int = 15
    facts_per_document: tuple[int, int] = (3, 8)
    distractors_per_document: tuple[int, int] = (2, 5)
    error_rate: float = 0.1

    def validate(self) -> None:
        if self.sources_per_class < 1 or self.documents_per_source < 1:
            raise GenerationError("source and document counts must be >= 1")
        low, high = self.facts_per_document
        if low < 1 or high < low:
            raise GenerationError("facts_per_document range is invalid")


def generate_webtext(
    world: GroundTruthWorld,
    config: WebTextConfig | None = None,
    classes: tuple[str, ...] | None = None,
) -> list[TextDocument]:
    """Generate the Web-text corpus for the given classes (default: all)."""
    cfg = config or WebTextConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)
    documents: list[TextDocument] = []
    for class_name in classes or world.classes():
        for source_index in range(cfg.sources_per_class):
            source_id = (
                f"text.{names.invented_word(rng, 2).lower()}"
                f"{class_name.lower()}.net"
            )
            # Source-specific error rate clustered around the configured one.
            source_error = max(
                0.0, min(0.5, cfg.error_rate * rng.uniform(0.5, 1.8))
            )
            for doc_index in range(cfg.documents_per_source):
                documents.append(
                    _generate_document(
                        world, class_name, source_id,
                        f"{source_id}/doc{doc_index:03d}",
                        source_error, rng, cfg,
                    )
                )
    return documents


def _generate_document(
    world: GroundTruthWorld,
    class_name: str,
    source_id: str,
    doc_id: str,
    error_rate: float,
    rng: random.Random,
    cfg: WebTextConfig,
) -> TextDocument:
    entities = list(world.entities(class_name))
    entity = rng.choice(entities)
    catalog = world.catalogs[class_name]
    candidates = [
        spec
        for spec in catalog.attributes
        if world.true_leaf_values(entity.entity_id, spec.name)
        and rng.random() < spec.web_propensity
    ]
    rng.shuffle(candidates)
    fact_count = rng.randint(*cfg.facts_per_document)
    chosen = candidates[:fact_count]

    sentences: list[str] = []
    gold: list[GoldFact] = []
    for spec in chosen:
        truths = sorted(world.true_leaf_values(entity.entity_id, spec.name))
        value = rng.choice(truths)
        is_true = True
        if rng.random() < error_rate:
            wrong = corrupt_value(value, rng, world.value_pool(class_name, spec))
            is_true = wrong in world.true_values(entity.entity_id, spec.name)
            value = wrong
        template_index = rng.randrange(len(_FACT_TEMPLATES))
        sentence = _FACT_TEMPLATES[template_index].format(
            attribute=spec.name,
            entity=rng.choice(entity.surface_forms()),
            value=value,
        )
        sentences.append(sentence)
        gold.append(
            GoldFact(entity.entity_id, spec.name, value, is_true, template_index)
        )

    for _ in range(rng.randint(*cfg.distractors_per_document)):
        template = rng.choice(_DISTRACTOR_TEMPLATES)
        sentences.append(template.format(word=names.invented_word(rng, 2)))
    rng.shuffle(sentences)
    return TextDocument(
        doc_id, source_id, class_name, " ".join(sentences), tuple(gold)
    )
