"""Deterministic name generation primitives.

All synthetic generators share these helpers to mint entity names,
place names and vocabulary words.  Everything is driven by an explicit
``random.Random`` so a seed fully determines the generated world.
"""

from __future__ import annotations

import random

_ONSETS = [
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl",
    "l", "m", "n", "p", "pr", "qu", "r", "s", "sh", "st", "t", "th", "tr",
    "v", "w", "z",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "ou"]
_CODAS = ["", "l", "m", "n", "nd", "r", "rn", "s", "st", "t", "x"]

_ADJECTIVES = [
    "Silent", "Golden", "Crimson", "Hidden", "Broken", "Distant", "Eternal",
    "Forgotten", "Gentle", "Hollow", "Iron", "Jade", "Lonely", "Midnight",
    "Northern", "Pale", "Quiet", "Restless", "Scarlet", "Twilight",
    "Velvet", "Wandering", "Winter", "Ancient", "Burning",
]
_NOUNS = [
    "River", "Mountain", "Garden", "Empire", "Voyage", "Harbor", "Forest",
    "Mirror", "Shadow", "Crown", "Bridge", "Tower", "Island", "Storm",
    "Lantern", "Compass", "Archive", "Orchard", "Meadow", "Citadel",
    "Horizon", "Beacon", "Labyrinth", "Fountain", "Observatory",
]

_HOTEL_BRANDS = [
    "Grand", "Royal", "Imperial", "Park", "Plaza", "Crown", "Harbour",
    "Summit", "Meridian", "Pacific", "Continental", "Regency",
]

_FIRST_NAMES = [
    "Alice", "Ben", "Clara", "David", "Elena", "Frank", "Grace", "Henry",
    "Iris", "James", "Karen", "Liam", "Mona", "Noah", "Olive", "Peter",
    "Quinn", "Rosa", "Samuel", "Tara", "Umar", "Vera", "Walter", "Xenia",
    "Yara", "Zane",
]
_SURNAMES = [
    "Anders", "Bennett", "Calloway", "Drummond", "Ellison", "Fairbanks",
    "Garland", "Hawthorne", "Ibsen", "Jennings", "Kowalski", "Lindqvist",
    "Moreau", "Nakamura", "Okafor", "Petrov", "Quimby", "Rutherford",
    "Sandoval", "Thackeray", "Underwood", "Voss", "Whitfield", "Yamada",
    "Zimmermann", "Abernathy",
]


def syllable(rng: random.Random) -> str:
    """One pronounceable syllable."""
    return rng.choice(_ONSETS) + rng.choice(_NUCLEI) + rng.choice(_CODAS)


def invented_word(rng: random.Random, syllables: int = 2) -> str:
    """A pronounceable invented word, capitalised."""
    word = "".join(syllable(rng) for _ in range(syllables))
    return word.capitalize()


def place_name(rng: random.Random) -> str:
    """An invented place name, occasionally suffixed (``-ville``, etc.)."""
    base = invented_word(rng, rng.choice([2, 2, 3]))
    if rng.random() < 0.3:
        base += rng.choice(["ville", "ton", "burg", "ford", "haven", "field"])
    return base


def person_name(rng: random.Random) -> str:
    """A plausible person name from fixed pools."""
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_SURNAMES)}"


def title_name(rng: random.Random) -> str:
    """A creative-work title (for books and films)."""
    shape = rng.random()
    if shape < 0.45:
        return f"The {rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
    if shape < 0.75:
        return f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
    return f"{rng.choice(_NOUNS)} of {invented_word(rng, 2)}"


def country_name(rng: random.Random) -> str:
    """An invented country name."""
    base = invented_word(rng, rng.choice([2, 3]))
    if rng.random() < 0.25:
        base += rng.choice(["ia", "land", "stan", "ova"])
    return base


def university_name(rng: random.Random, place: str | None = None) -> str:
    """A university name anchored at a place."""
    anchor = place or place_name(rng)
    if rng.random() < 0.5:
        return f"University of {anchor}"
    return f"{anchor} University"


def hotel_name(rng: random.Random, place: str | None = None) -> str:
    """A hotel name anchored at a place."""
    anchor = place or place_name(rng)
    return f"{rng.choice(_HOTEL_BRANDS)} {anchor} Hotel"


def word_pool(rng: random.Random, count: int, syllables: int = 2) -> list[str]:
    """A pool of ``count`` distinct invented lower-case words."""
    pool: set[str] = set()
    while len(pool) < count:
        pool.add(invented_word(rng, syllables).lower())
    return sorted(pool)
