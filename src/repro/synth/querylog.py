"""Synthetic search-engine query stream.

The paper combines Google and AOL logs into a 29,283,918-record stream
and reports, per class, how many records are *relevant* (mention a
class entity) and how many *credible attributes* the extractor finds
(Table 3).  This generator emits a scaled stream with the same
structure:

* relevant records mention a recognised entity; a class-dependent share
  of them carry *attribute intent*, phrased exactly in the patterns the
  extractor knows ("what is the A of E", "the A of E", "E's A") plus
  free-form variants;
* Hotel queries are dominated by navigational/transactional intent
  ("cheap deals", "book now"), so essentially no attribute-intent
  records exist — reproducing the paper's N/A for Hotel;
* the rest of the stream is noise: word salad, navigation, other
  domains.

Every record carries optional gold annotations (used only by
evaluation, never by the extractor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.synth import names
from repro.synth.catalog import AttributeSpec
from repro.synth.noise import misspell_phrase
from repro.synth.world import GroundTruthWorld

# Table 3 of the paper: relevant query records per class.
PAPER_TABLE3_RELEVANT: dict[str, int] = {
    "Book": 259_556,
    "Film": 403_672,
    "Country": 393_244,
    "University": 24_633,
    "Hotel": 15_544,
}
PAPER_TOTAL_RECORDS = 29_283_918

# Share of relevant records that carry attribute intent.  Hotel queries
# are navigational, which is why the paper found no credible attributes.
DEFAULT_ATTRIBUTE_INTENT_SHARE: dict[str, float] = {
    "Book": 0.55,
    "Film": 0.35,
    "Country": 0.6,
    "University": 0.55,
    "Hotel": 0.01,
}

_NOISE_NAVIGATION = [
    "login page", "free email", "weather today", "news headlines",
    "video streaming", "maps directions", "online shopping", "song lyrics",
    "sports scores", "stock prices", "recipe ideas", "job listings",
]
_HOTEL_TRANSACTIONAL = [
    "cheap deals {entity}", "book {entity} online", "{entity} discount code",
    "{entity} last minute booking", "best price {entity}", "{entity} reviews",
    "{entity} photos", "deals near {entity}",
]
_ENTITY_ONLY_FORMS = [
    "{entity}", "{entity} wiki", "{entity} official site", "{entity} news",
    "about {entity}", "{entity} 2014",
]


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One query-log record with optional gold annotations.

    Extractors must only read ``text``; the ``gold_*`` fields exist for
    evaluation (they say which fact, if any, the record realises).
    """

    record_id: int
    text: str
    gold_class: str | None = None
    gold_entity: str | None = None  # entity_id
    gold_attribute: str | None = None  # canonical attribute name


@dataclass(slots=True)
class QueryLogConfig:
    """Scaled query-stream parameters (defaults follow Table 3)."""

    seed: int = 17
    scale: float = 0.001
    relevant_counts: dict[str, int] = field(
        default_factory=lambda: dict(PAPER_TABLE3_RELEVANT)
    )
    total_records: int = PAPER_TOTAL_RECORDS
    attribute_intent_share: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ATTRIBUTE_INTENT_SHARE)
    )
    misspell_rate: float = 0.06
    zipf_exponent: float = 1.1
    max_noise_records: int = 200_000

    def validate(self) -> None:
        if not 0 < self.scale <= 1:
            raise GenerationError("scale must be in (0, 1]")
        if self.zipf_exponent <= 0:
            raise GenerationError("zipf_exponent must be positive")


def generate_query_log(
    world: GroundTruthWorld, config: QueryLogConfig | None = None
) -> list[QueryRecord]:
    """Generate the scaled query stream for all classes in the world."""
    cfg = config or QueryLogConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)
    records: list[QueryRecord] = []
    record_id = 0

    for class_name in world.classes():
        relevant_total = cfg.relevant_counts.get(class_name, 0)
        count = max(1, round(relevant_total * cfg.scale))
        intent_share = cfg.attribute_intent_share.get(class_name, 0.4)
        for _ in range(count):
            record_id += 1
            records.append(
                _relevant_record(world, class_name, intent_share, record_id, rng, cfg)
            )

    relevant_count = len(records)
    relevant_share = (
        sum(cfg.relevant_counts.values()) / cfg.total_records
    )
    noise_count = min(
        cfg.max_noise_records,
        max(0, round(relevant_count / relevant_share) - relevant_count),
    )
    for _ in range(noise_count):
        record_id += 1
        records.append(QueryRecord(record_id, _noise_query(rng)))
    rng.shuffle(records)
    return records


def _relevant_record(
    world: GroundTruthWorld,
    class_name: str,
    intent_share: float,
    record_id: int,
    rng: random.Random,
    cfg: QueryLogConfig,
) -> QueryRecord:
    entities = world.entities(class_name)
    entity = entities[_zipf_index(rng, len(entities), cfg.zipf_exponent)]
    surface = rng.choice(entity.surface_forms())
    if rng.random() < 0.7:
        surface = surface.lower()
    if rng.random() < cfg.misspell_rate:
        surface = misspell_phrase(surface, rng)

    if class_name == "Hotel" and rng.random() > intent_share:
        form = rng.choice(_HOTEL_TRANSACTIONAL + _ENTITY_ONLY_FORMS)
        return QueryRecord(
            record_id,
            form.format(entity=surface),
            gold_class=class_name,
            gold_entity=entity.entity_id,
        )
    if rng.random() > intent_share:
        form = rng.choice(_ENTITY_ONLY_FORMS)
        return QueryRecord(
            record_id,
            form.format(entity=surface),
            gold_class=class_name,
            gold_entity=entity.entity_id,
        )

    attribute = _pick_attribute(world, class_name, rng, cfg.zipf_exponent)
    attr_surface = attribute.name
    if rng.random() < cfg.misspell_rate:
        attr_surface = misspell_phrase(attr_surface, rng)
    text = _attribute_intent_query(attr_surface, surface, attribute, rng)
    return QueryRecord(
        record_id,
        text,
        gold_class=class_name,
        gold_entity=entity.entity_id,
        gold_attribute=attribute.name,
    )


def _pick_attribute(
    world: GroundTruthWorld,
    class_name: str,
    rng: random.Random,
    zipf_exponent: float,
) -> AttributeSpec:
    """Pick an attribute weighted by query propensity × Zipf rank."""
    specs = sorted(
        world.catalogs[class_name].attributes,
        key=lambda spec: -spec.query_propensity,
    )
    weights = [
        spec.query_propensity / (rank + 1) ** zipf_exponent
        for rank, spec in enumerate(specs)
    ]
    return rng.choices(specs, weights=weights, k=1)[0]


def _attribute_intent_query(
    attribute_surface: str,
    entity_surface: str,
    attribute: AttributeSpec,
    rng: random.Random,
) -> str:
    """Instantiate one of the paper's query patterns."""
    wh_word = "what"
    if any(
        hint in attribute.name
        for hint in ("author", "director", "president", "minister",
                     "chancellor", "owner", "founder")
    ):
        wh_word = "who"
    elif "date" in attribute.name or "founded" in attribute.name:
        wh_word = rng.choice(["what", "when"])
    elif attribute.name.startswith(("number", "total")):
        wh_word = rng.choice(["what", "how"])

    determiner = rng.choice(["the ", "", "a "])
    shape = rng.random()
    if shape < 0.45:
        return f"{wh_word} is the {attribute_surface} of {determiner}{entity_surface}"
    if shape < 0.75:
        return f"the {attribute_surface} of {determiner}{entity_surface}"
    return f"{entity_surface}'s {attribute_surface}"


def _zipf_index(rng: random.Random, size: int, exponent: float) -> int:
    """Draw an index in [0, size) with a Zipf-like distribution."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
    return rng.choices(range(size), weights=weights, k=1)[0]


def _noise_query(rng: random.Random) -> str:
    """An irrelevant query (navigation or word salad)."""
    if rng.random() < 0.5:
        return rng.choice(_NOISE_NAVIGATION)
    word_count = rng.randint(2, 5)
    return " ".join(
        names.invented_word(rng, rng.choice([1, 2])).lower()
        for _ in range(word_count)
    )
