"""Noise models shared by the synthetic generators.

Real Web data is dirty in specific ways the paper's fusion phase must
survive: misspellings, attribute-name synonyms, wrong values copied
between sources, and formatting variation.  Each corruption here is a
pure function of an explicit RNG, so noise is reproducible.
"""

from __future__ import annotations

import random

_KEYBOARD_NEIGHBORS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


def misspell(word: str, rng: random.Random) -> str:
    """Introduce one realistic typo into a word (≥ 4 characters).

    Typo kinds: neighbouring-key substitution, transposition, deletion,
    duplication.  Words shorter than 4 characters return unchanged —
    short-word typos produce different words, not recognisable
    misspellings.
    """
    if len(word) < 4:
        return word
    index = rng.randrange(1, len(word) - 1)
    kind = rng.randrange(4)
    char = word[index].lower()
    if kind == 0 and char in _KEYBOARD_NEIGHBORS:
        replacement = rng.choice(_KEYBOARD_NEIGHBORS[char])
        return word[:index] + replacement + word[index + 1 :]
    if kind == 1:
        return word[:index] + word[index + 1] + word[index] + word[index + 2 :]
    if kind == 2:
        return word[:index] + word[index + 1 :]
    return word[:index] + word[index] + word[index:]


def misspell_phrase(phrase: str, rng: random.Random) -> str:
    """Misspell one word of a multi-word phrase."""
    words = phrase.split(" ")
    candidates = [i for i, word in enumerate(words) if len(word) >= 4]
    if not candidates:
        return phrase
    index = rng.choice(candidates)
    words[index] = misspell(words[index], rng)
    return " ".join(words)


# Synonym rewrites for attribute names ("A of E" variants).
_SYNONYM_REWRITES = [
    lambda name: f"{name} of record",
    lambda name: f"official {name}",
    lambda name: f"total {name}",
    lambda name: " ".join(reversed(name.split(" ")))
    if len(name.split(" ")) == 2
    else name,
]


def synonymize_attribute(name: str, rng: random.Random) -> str:
    """A synonym surface form for an attribute name.

    Swaps in a structural variant ("publication date" →
    "date of publication") or decorates with a qualifier; returns the
    input unchanged when no rewrite applies.
    """
    words = name.split(" ")
    if len(words) == 2 and rng.random() < 0.6:
        return f"{words[1]} of {words[0]}"
    rewrite = rng.choice(_SYNONYM_REWRITES)
    return rewrite(name)


def corrupt_value(value: str, rng: random.Random, pool: list[str]) -> str:
    """Replace a value with a wrong one.

    Prefers a *plausible* wrong value (another value from the same
    attribute's pool), falling back to a misspelling of the truth.
    """
    alternatives = [candidate for candidate in pool if candidate != value]
    if alternatives and rng.random() < 0.8:
        return rng.choice(alternatives)
    corrupted = misspell_phrase(value, rng)
    if corrupted != value:
        return corrupted
    return value + "x"


def format_variation(value: str, rng: random.Random) -> str:
    """A harmless formatting variant of the same value (case, spacing)."""
    kind = rng.randrange(3)
    if kind == 0:
        return value.upper()
    if kind == 1:
        return value.lower()
    return value.title()
