"""Synthetic snapshots of existing knowledge bases.

The paper uses four representative KBs (Table 1: YAGO, DBpedia,
Freebase, NELL) and extracts attributes from two of them (Table 2:
Freebase + DBpedia).  We generate each snapshot as a noisy, partial
view of the ground-truth world:

* a KB has an **official schema** per class — the small attribute set
  the paper reports as "original" (e.g. 9 properties for Freebase's
  University type);
* its **instance data** uses a larger attribute set (unmapped/raw
  properties, cross-type property usage) — this is why extraction from
  a KB's instance data recovers *more* attributes than its schema
  (Table 2's "Extrac." columns);
* each KB renders attribute names in its own convention (DBpedia
  camelCase, Freebase ``class/snake_case`` keys), so combining KBs
  requires normalisation and duplicate removal;
* instance values are wrong at a per-KB error rate, drawn from the
  attribute's plausible-value pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.rdf.ontology import Entity
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.catalog import AttributeSpec
from repro.synth.noise import corrupt_value
from repro.synth.world import GroundTruthWorld

# Per-class calibration from Table 2 of the paper:
# (dbpedia_schema, dbpedia_instance, freebase_schema, freebase_instance,
#  combined) attribute counts.
PAPER_TABLE2: dict[str, tuple[int, int, int, int, int]] = {
    "Book": (21, 48, 5, 19, 60),
    "Film": (53, 53, 54, 54, 92),
    "Country": (191, 360, 22, 150, 489),
    "University": (21, 484, 9, 57, 518),
    "Hotel": (18, 216, 7, 56, 255),
}

# Table 1 of the paper: (# entities in millions, # attributes).
PAPER_TABLE1: dict[str, tuple[float, int]] = {
    "YAGO": (10.0, 100),
    "DBpedia": (4.0, 6000),
    "Freebase": (25.0, 4000),
    "NELL": (0.3, 500),
}


def render_name(attribute: str, class_name: str, naming: str) -> str:
    """Render a canonical attribute name in a KB's naming convention."""
    words = attribute.split(" ")
    if naming == "camel":
        return words[0] + "".join(word.capitalize() for word in words[1:])
    if naming == "snake":
        return f"{class_name.lower()}/{'_'.join(words)}"
    if naming == "label":
        return attribute
    raise GenerationError(f"unknown naming convention {naming!r}")


def decamelize(name: str) -> str:
    """Invert camelCase rendering: ``publicationDate`` → ``publication date``."""
    out: list[str] = []
    for char in name:
        if char.isupper() and out:
            out.append(" ")
        out.append(char.lower())
    return "".join(out)


@dataclass(slots=True)
class KbClassView:
    """One class as seen inside a KB snapshot."""

    class_name: str
    schema_attributes: tuple[str, ...]  # KB-rendered official schema
    instance_attributes: tuple[str, ...]  # KB-rendered, used in instance data
    entities: tuple[Entity, ...]


@dataclass(slots=True)
class KbSnapshot:
    """A generated snapshot of one knowledge base."""

    kb_id: str
    naming: str
    classes: dict[str, KbClassView] = field(default_factory=dict)
    store: TripleStore = field(default_factory=TripleStore)

    def entity_count(self) -> int:
        return sum(len(view.entities) for view in self.classes.values())

    def schema_attribute_count(self, class_name: str | None = None) -> int:
        """Distinct official-schema attribute names."""
        if class_name is not None:
            return len(self.classes[class_name].schema_attributes)
        names = {
            attribute
            for view in self.classes.values()
            for attribute in view.schema_attributes
        }
        return len(names)

    def attribute_count(self) -> int:
        """Distinct attribute names anywhere in the KB (schema + usage)."""
        names = {
            attribute
            for view in self.classes.values()
            for attribute in view.schema_attributes + view.instance_attributes
        }
        return len(names)


@dataclass(slots=True)
class KbPairConfig:
    """Configuration for the Freebase+DBpedia pair of Table 2."""

    seed: int = 11
    coverage: float = 0.6  # chance an entity's true fact appears in the KB
    error_rate_dbpedia: float = 0.05
    error_rate_freebase: float = 0.03
    entity_ratio_dbpedia: float = 0.7
    entity_ratio_freebase: float = 1.0
    table2: dict[str, tuple[int, int, int, int, int]] = field(
        default_factory=lambda: dict(PAPER_TABLE2)
    )


def build_kb_pair(
    world: GroundTruthWorld, config: KbPairConfig | None = None
) -> tuple[KbSnapshot, KbSnapshot]:
    """Generate the (Freebase-like, DBpedia-like) snapshot pair.

    Attribute-set sizes per class follow the Table 2 calibration,
    clamped to the world's universe sizes; the overlap between the two
    KBs' instance attribute sets is chosen so that the union matches the
    paper's "Combine" column.
    """
    cfg = config or KbPairConfig()
    rng = random.Random(cfg.seed)
    freebase = KbSnapshot("freebase", "snake")
    dbpedia = KbSnapshot("dbpedia", "camel")

    for class_name in world.classes():
        calibration = cfg.table2.get(class_name)
        if calibration is None:
            raise GenerationError(f"no Table-2 calibration for {class_name!r}")
        db_schema, db_instance, fb_schema, fb_instance, combined = calibration
        universe = list(world.attribute_names(class_name))
        total = len(universe)
        db_instance = min(db_instance, total)
        fb_instance = min(fb_instance, total)
        combined = min(combined, total)
        overlap = max(0, db_instance + fb_instance - combined)

        rng.shuffle(universe)
        db_set = universe[:db_instance]
        shared = rng.sample(db_set, min(overlap, len(db_set)))
        complement = [name for name in universe if name not in db_set]
        fb_only_needed = fb_instance - len(shared)
        if fb_only_needed > len(complement):
            raise GenerationError(
                f"universe of {class_name!r} too small for calibration"
            )
        fb_set = shared + complement[:fb_only_needed]

        db_schema_set = rng.sample(db_set, min(db_schema, len(db_set)))
        fb_schema_set = rng.sample(fb_set, min(fb_schema, len(fb_set)))

        _fill_snapshot_class(
            dbpedia, world, class_name, db_schema_set, db_set,
            cfg.entity_ratio_dbpedia, cfg.coverage, cfg.error_rate_dbpedia,
            rng,
        )
        _fill_snapshot_class(
            freebase, world, class_name, fb_schema_set, fb_set,
            cfg.entity_ratio_freebase, cfg.coverage, cfg.error_rate_freebase,
            rng,
        )
    return freebase, dbpedia


def _fill_snapshot_class(
    snapshot: KbSnapshot,
    world: GroundTruthWorld,
    class_name: str,
    schema_attributes: list[str],
    instance_attributes: list[str],
    entity_ratio: float,
    coverage: float,
    error_rate: float,
    rng: random.Random,
) -> None:
    """Populate one class of a snapshot with entities and noisy facts."""
    all_entities = list(world.entities(class_name))
    count = max(1, round(len(all_entities) * entity_ratio))
    entities = rng.sample(all_entities, min(count, len(all_entities)))
    rendered_schema = tuple(
        render_name(name, class_name, snapshot.naming)
        for name in schema_attributes
    )
    rendered_instance = tuple(
        render_name(name, class_name, snapshot.naming)
        for name in instance_attributes
    )
    snapshot.classes[class_name] = KbClassView(
        class_name, rendered_schema, rendered_instance, tuple(entities)
    )

    provenance = Provenance(source_id=snapshot.kb_id, extractor_id="kb-load")
    catalog = world.catalogs[class_name]
    specs: dict[str, AttributeSpec] = {
        spec.name: spec for spec in catalog.attributes
    }
    # Track attributes that appeared on at least one entity so every
    # instance attribute is discoverable.
    appeared: set[str] = set()
    for entity in entities:
        for attribute in instance_attributes:
            true_leaves = world.true_leaf_values(entity.entity_id, attribute)
            if not true_leaves:
                continue
            if rng.random() > coverage:
                continue
            appeared.add(attribute)
            spec = specs[attribute]
            lexical = rng.choice(sorted(true_leaves))
            if rng.random() < error_rate:
                lexical = corrupt_value(
                    lexical, rng, world.value_pool(class_name, spec)
                )
            snapshot.store.add(
                ScoredTriple(
                    Triple(
                        entity.entity_id,
                        render_name(attribute, class_name, snapshot.naming),
                        Value(lexical, spec.value_kind),
                    ),
                    provenance,
                )
            )
    # Force one usage for any instance attribute that never appeared.
    for attribute in instance_attributes:
        if attribute in appeared or not entities:
            continue
        entity = rng.choice(entities)
        spec = specs[attribute]
        pool = world.value_pool(class_name, spec)
        snapshot.store.add(
            ScoredTriple(
                Triple(
                    entity.entity_id,
                    render_name(attribute, class_name, snapshot.naming),
                    Value(rng.choice(pool), spec.value_kind),
                ),
                provenance,
            )
        )


@dataclass(slots=True)
class RepresentativeKbConfig:
    """Scaling for the Table-1 snapshots.

    Entity counts scale so the largest KB (Freebase, 25M) covers the
    whole world; attribute counts scale so the largest vocabulary
    (DBpedia, 6000) covers the whole universe.
    """

    seed: int = 13
    coverage: float = 0.5
    error_rates: dict[str, float] = field(
        default_factory=lambda: {
            "YAGO": 0.02,
            "DBpedia": 0.05,
            "Freebase": 0.03,
            "NELL": 0.15,
        }
    )


def build_representative_snapshots(
    world: GroundTruthWorld, config: RepresentativeKbConfig | None = None
) -> dict[str, KbSnapshot]:
    """Generate the four Table-1 snapshots (YAGO, DBpedia, Freebase, NELL)."""
    cfg = config or RepresentativeKbConfig()
    rng = random.Random(cfg.seed)
    max_entities_m = max(spec[0] for spec in PAPER_TABLE1.values())
    max_attributes = max(spec[1] for spec in PAPER_TABLE1.values())
    world_entities = sum(
        len(world.entities(class_name)) for class_name in world.classes()
    )
    universe_total = sum(
        len(world.attribute_names(class_name))
        for class_name in world.classes()
    )
    namings = {
        "YAGO": "camel",
        "DBpedia": "camel",
        "Freebase": "snake",
        "NELL": "label",
    }
    snapshots: dict[str, KbSnapshot] = {}
    for kb_name, (entities_m, attributes) in PAPER_TABLE1.items():
        entity_target = max(1, round(world_entities * entities_m / max_entities_m))
        attribute_target = max(
            1, round(universe_total * attributes / max_attributes)
        )
        snapshots[kb_name] = _build_scaled_snapshot(
            world,
            kb_name.lower(),
            namings[kb_name],
            entity_target,
            attribute_target,
            cfg.coverage,
            cfg.error_rates[kb_name],
            rng,
        )
    return snapshots


def _build_scaled_snapshot(
    world: GroundTruthWorld,
    kb_id: str,
    naming: str,
    entity_target: int,
    attribute_target: int,
    coverage: float,
    error_rate: float,
    rng: random.Random,
) -> KbSnapshot:
    """One snapshot with approximate global entity/attribute targets."""
    snapshot = KbSnapshot(kb_id, naming)
    class_names = list(world.classes())
    world_entities = sum(
        len(world.entities(class_name)) for class_name in class_names
    )
    universe_total = sum(
        len(world.attribute_names(class_name)) for class_name in class_names
    )
    for class_name in class_names:
        class_entities = len(world.entities(class_name))
        class_universe = len(world.attribute_names(class_name))
        entity_share = max(
            1, round(entity_target * class_entities / world_entities)
        )
        attribute_share = max(
            1, round(attribute_target * class_universe / universe_total)
        )
        universe = list(world.attribute_names(class_name))
        rng.shuffle(universe)
        chosen = universe[: min(attribute_share, len(universe))]
        schema = chosen[: max(1, len(chosen) // 3)]
        _fill_snapshot_class(
            snapshot, world, class_name, schema, chosen,
            entity_share / class_entities, coverage, error_rate, rng,
        )
    return snapshot
