"""Synthetic claim-world generator for fusion experiments.

Fusion methods are evaluated on controlled claim sets where the truth,
the per-source accuracy, the copying structure and the confidence
calibration are all known.  This generator builds such worlds:

* ``n_items`` data items, each with one (functional) or several
  (multi-truth) true values plus a pool of plausible false values;
* independent sources with individual accuracies, each covering a
  random subset of items;
* optional **copier cliques**: sources that replicate a leader's claims
  (errors included) — the scenario correlation-aware fusion must win;
* optional **hierarchical truths**: the true value is a leaf of a
  chain, and sloppy sources report an ancestor instead of a wrong value
  — the scenario hierarchy-aware fusion must win;
* optional **informative confidences**: correct claims tend to carry
  higher confidence than wrong ones (calibration strength is a knob).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.fusion.base import Claim, ClaimSet, Item
from repro.rdf.hierarchy import ValueHierarchy


@dataclass(slots=True)
class ClaimWorldConfig:
    """Parameters of a synthetic claim world."""

    seed: int = 0
    n_items: int = 60
    n_sources: int = 10
    coverage: float = 0.7
    source_accuracies: list[float] | None = None  # default: spread 0.55-0.95
    truths_per_item: int = 1  # >1 => multi-truth items
    false_pool: int = 6
    copier_cliques: int = 0  # cliques of 3 copying a leader
    clique_size: int = 3
    hierarchical: bool = False
    generalization_rate: float = 0.35  # chance a correct claim generalises
    confidence_informative: bool = False
    confidence_noise: float = 0.15

    def validate(self) -> None:
        if self.n_items < 1 or self.n_sources < 1:
            raise GenerationError("items and sources must be >= 1")
        if not 0 < self.coverage <= 1:
            raise GenerationError("coverage must lie in (0, 1]")
        if self.truths_per_item < 1:
            raise GenerationError("truths_per_item must be >= 1")
        if self.false_pool < 1:
            raise GenerationError("false_pool must be >= 1")


@dataclass(slots=True)
class ClaimWorld:
    """A generated claim set plus its gold standard."""

    claims: ClaimSet
    truths: dict[Item, set[str]] = field(default_factory=dict)
    source_accuracy: dict[str, float] = field(default_factory=dict)
    copier_of: dict[str, str] = field(default_factory=dict)
    hierarchy: ValueHierarchy | None = None

    def precision_of(self, decided: dict[Item, set[str]]) -> float:
        """Fraction of decided values that are true (hierarchy-aware)."""
        total = 0
        correct = 0
        for item, values in decided.items():
            gold = self.expanded_truths(item)
            for value in values:
                total += 1
                if value in gold:
                    correct += 1
        return correct / total if total else 0.0

    def recall_of(self, decided: dict[Item, set[str]]) -> float:
        """Fraction of gold (leaf) truths that were decided."""
        total = 0
        correct = 0
        for item, gold in self.truths.items():
            for value in gold:
                total += 1
                if value in decided.get(item, set()):
                    correct += 1
        return correct / total if total else 0.0

    def expanded_truths(self, item: Item) -> set[str]:
        gold = set(self.truths.get(item, set()))
        if self.hierarchy is not None:
            for value in list(gold):
                gold.update(self.hierarchy.ancestors(value))
        return gold


def generate_claim_world(config: ClaimWorldConfig | None = None) -> ClaimWorld:
    """Build a synthetic claim world per the configuration."""
    cfg = config or ClaimWorldConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)

    accuracies = cfg.source_accuracies
    if accuracies is None:
        accuracies = [
            0.55 + 0.4 * index / max(1, cfg.n_sources - 1)
            for index in range(cfg.n_sources)
        ]
    sources = [f"source{index:02d}" for index in range(cfg.n_sources)]
    accuracy_of = {
        source: accuracies[index % len(accuracies)]
        for index, source in enumerate(sources)
    }

    hierarchy: ValueHierarchy | None = None
    world = ClaimWorld(ClaimSet(), source_accuracy=dict(accuracy_of))
    if cfg.hierarchical:
        hierarchy = ValueHierarchy()
        world.hierarchy = hierarchy

    # Build items: truths + false pools (+ hierarchy chains).
    item_values: dict[Item, tuple[set[str], list[str]]] = {}
    for index in range(cfg.n_items):
        item: Item = (f"entity{index:03d}", "attr")
        truths = {
            f"true-{index:03d}-{t}" for t in range(cfg.truths_per_item)
        }
        falses = [f"false-{index:03d}-{f}" for f in range(cfg.false_pool)]
        if cfg.hierarchical:
            for truth in truths:
                hierarchy.add_chain(
                    [truth, f"region-{truth}", f"country-{truth}"]
                )
        item_values[item] = (truths, falses)
        world.truths[item] = truths

    # Independent sources claim their views.
    for source in sources:
        _emit_source_claims(
            world, source, accuracy_of[source], item_values, rng, cfg
        )

    # Copier cliques: each clique copies one fresh leader.
    for clique in range(cfg.copier_cliques):
        leader = f"leader{clique:02d}"
        leader_accuracy = 0.6
        world.source_accuracy[leader] = leader_accuracy
        leader_claims = _emit_source_claims(
            world, leader, leader_accuracy, item_values, rng, cfg
        )
        for member in range(cfg.clique_size):
            copier = f"copier{clique:02d}-{member}"
            world.source_accuracy[copier] = leader_accuracy
            world.copier_of[copier] = leader
            for copied in leader_claims:
                world.claims.add(
                    Claim(
                        item=copied.item,
                        value=copied.value,
                        lexical=copied.lexical,
                        source_id=copier,
                        extractor_id=copied.extractor_id,
                        confidence=copied.confidence,
                    )
                )
    return world


def _emit_source_claims(
    world: ClaimWorld,
    source: str,
    accuracy: float,
    item_values: dict[Item, tuple[set[str], list[str]]],
    rng: random.Random,
    cfg: ClaimWorldConfig,
) -> list[Claim]:
    emitted: list[Claim] = []
    for item, (truths, falses) in item_values.items():
        if rng.random() > cfg.coverage:
            continue
        for truth in truths:
            correct = rng.random() < accuracy
            if correct:
                value = truth
                if (
                    cfg.hierarchical
                    and rng.random() < cfg.generalization_rate
                ):
                    ancestors = world.hierarchy.ancestors(truth)
                    value = rng.choice(ancestors)
            else:
                value = rng.choice(falses)
            confidence = 1.0
            if cfg.confidence_informative:
                base = 0.8 if value in world.expanded_truths(item) else 0.35
                confidence = min(
                    1.0,
                    max(
                        0.05,
                        base + rng.uniform(-cfg.confidence_noise,
                                           cfg.confidence_noise),
                    ),
                )
            claim = Claim(
                item=item,
                value=value,
                lexical=value,
                source_id=source,
                extractor_id="synthetic",
                confidence=confidence,
            )
            world.claims.add(claim)
            emitted.append(claim)
    return emitted
