"""Synthetic websites: entity detail pages with site-specific DOM styles.

Algorithm 1 exploits a structural fact about data-intensive sites:
within one site (and page) attribute labels sit in regular positions
relative to the entity's name node, while *across* sites the tag paths
differ.  The generator enforces exactly that:

* each site draws a **layout style** (infobox table, definition list,
  bulleted list, key/value divs) plus its own chrome (navigation,
  sidebar, footer) and wrapper depth, so absolute tag paths differ
  between sites;
* each page presents one entity: the entity name in the page heading,
  then label/value rows for a subset of the entity's attributes;
* labels vary per site (case, trailing colon, occasional synonym or
  misspelling), values are wrong at a configurable error rate —
  feeding realistic noise into extraction and fusion.

Pages are rendered to HTML *strings*, so the extractor exercises the
full tokenizer → parser → tag-path stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.htmldom.node import Document, ElementNode
from repro.htmldom.serialize import to_html
from repro.synth import names
from repro.synth.catalog import AttributeSpec
from repro.synth.noise import (
    corrupt_value,
    format_variation,
    misspell_phrase,
    synonymize_attribute,
)
from repro.synth.world import GroundTruthWorld

LAYOUT_STYLES = ("table", "dl", "ul", "divs")


@dataclass(frozen=True, slots=True)
class GoldMention:
    """Gold annotation: one attribute/value row rendered on a page."""

    entity_id: str
    attribute: str  # canonical name
    label_surface: str  # what the page shows as the label
    value: str  # what the page shows as the value
    value_is_true: bool


@dataclass(slots=True)
class WebPage:
    """One generated page: URL, markup and gold annotations."""

    url: str
    html: str
    entity_id: str
    entity_surface: str
    gold: tuple[GoldMention, ...]


@dataclass(slots=True)
class Website:
    """A site: one class, one layout style, many entity pages."""

    site_id: str
    class_name: str
    style: str
    pages: list[WebPage] = field(default_factory=list)


@dataclass(slots=True)
class WebsiteConfig:
    """Generation parameters for the website corpus."""

    seed: int = 23
    sites_per_class: int = 4
    pages_per_site: int = 20
    min_attributes_per_page: int = 5
    max_attributes_per_page: int = 14
    error_rate: float = 0.08
    label_misspell_rate: float = 0.03
    label_synonym_rate: float = 0.08
    noise_rows: int = 2  # unrelated label/value rows per page

    def validate(self) -> None:
        if self.sites_per_class < 1 or self.pages_per_site < 1:
            raise GenerationError("site and page counts must be >= 1")
        if self.min_attributes_per_page > self.max_attributes_per_page:
            raise GenerationError(
                "min_attributes_per_page must be <= max_attributes_per_page"
            )


def generate_websites(
    world: GroundTruthWorld,
    config: WebsiteConfig | None = None,
    classes: tuple[str, ...] | None = None,
) -> list[Website]:
    """Generate the website corpus for the given classes (default: all)."""
    cfg = config or WebsiteConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)
    sites: list[Website] = []
    for class_name in classes or world.classes():
        for site_index in range(cfg.sites_per_class):
            sites.append(
                _generate_site(world, class_name, site_index, rng, cfg)
            )
    return sites


def _generate_site(
    world: GroundTruthWorld,
    class_name: str,
    site_index: int,
    rng: random.Random,
    cfg: WebsiteConfig,
) -> Website:
    style = LAYOUT_STYLES[site_index % len(LAYOUT_STYLES)]
    host = f"www.{names.invented_word(rng, 2).lower()}{class_name.lower()}.com"
    site = Website(host, class_name, style)
    # Site-level presentation decisions, constant across the site's pages.
    label_case = rng.choice(["title", "lower", "upper"])
    label_colon = rng.random() < 0.6
    wrapper_depth = rng.randint(0, 2)
    site_labels: dict[str, str] = {}  # canonical -> site's label surface

    entities = list(world.entities(class_name))
    rng.shuffle(entities)
    chosen = entities[: min(cfg.pages_per_site, len(entities))]
    for page_index, entity in enumerate(chosen):
        page = _generate_page(
            world, site, entity, page_index, rng, cfg,
            label_case, label_colon, wrapper_depth, site_labels,
        )
        site.pages.append(page)
    return site


def _site_label(
    attribute: AttributeSpec,
    rng: random.Random,
    cfg: WebsiteConfig,
    label_case: str,
    label_colon: bool,
    site_labels: dict[str, str],
) -> str:
    """The site's (sticky) label for an attribute, with styling applied."""
    base = site_labels.get(attribute.name)
    if base is None:
        base = attribute.name
        if rng.random() < cfg.label_synonym_rate:
            base = synonymize_attribute(base, rng)
        elif rng.random() < cfg.label_misspell_rate:
            base = misspell_phrase(base, rng)
        site_labels[attribute.name] = base
    if label_case == "title":
        styled = base.title()
    elif label_case == "upper":
        styled = base.upper()
    else:
        styled = base
    return styled + (":" if label_colon else "")


def _generate_page(
    world: GroundTruthWorld,
    site: Website,
    entity,
    page_index: int,
    rng: random.Random,
    cfg: WebsiteConfig,
    label_case: str,
    label_colon: bool,
    wrapper_depth: int,
    site_labels: dict[str, str],
) -> WebPage:
    class_name = site.class_name
    catalog = world.catalogs[class_name]
    # Attributes this entity actually has a fact for, weighted by web
    # propensity, bounded to the page budget.
    candidates = [
        spec
        for spec in catalog.attributes
        if world.true_leaf_values(entity.entity_id, spec.name)
        and rng.random() < spec.web_propensity
    ]
    rng.shuffle(candidates)
    budget = rng.randint(cfg.min_attributes_per_page, cfg.max_attributes_per_page)
    chosen = candidates[:budget]

    gold: list[GoldMention] = []
    rows: list[tuple[str, str]] = []
    for spec in chosen:
        label = _site_label(spec, rng, cfg, label_case, label_colon, site_labels)
        truths = sorted(world.true_leaf_values(entity.entity_id, spec.name))
        value = rng.choice(truths)
        is_true = True
        if rng.random() < cfg.error_rate:
            wrong = corrupt_value(
                value, rng, world.value_pool(class_name, spec)
            )
            is_true = wrong in world.true_values(entity.entity_id, spec.name)
            value = wrong
        if rng.random() < 0.15:
            value = format_variation(value, rng)
        rows.append((label, value))
        gold.append(
            GoldMention(entity.entity_id, spec.name, label, value, is_true)
        )
    for _ in range(cfg.noise_rows):
        noise_label = names.invented_word(rng, 2)
        noise_value = names.invented_word(rng, 2)
        rows.append((noise_label, noise_value))

    entity_surface = rng.choice(entity.surface_forms())
    document = _render_page(
        site, entity_surface, rows, wrapper_depth, rng
    )
    url = f"http://{site.site_id}/{class_name.lower()}/{page_index:04d}.html"
    return WebPage(
        url, to_html(document), entity.entity_id, entity_surface, tuple(gold)
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _render_page(
    site: Website,
    entity_surface: str,
    rows: list[tuple[str, str]],
    wrapper_depth: int,
    rng: random.Random,
) -> Document:
    document = Document()
    html = document.append_element("html")
    head = html.append_element("head")
    head.append_element("title").append_text(f"{entity_surface} - {site.site_id}")
    body = html.append_element("body")

    nav = body.append_element("nav")
    for link_text in ("Home", "About", "Browse", "Contact"):
        nav.append_element("a", {"href": "#"}).append_text(link_text)

    container = body.append_element("div", {"class": "container"})
    for _ in range(wrapper_depth):
        container = container.append_element("div", {"class": "wrap"})

    heading = container.append_element("h1", {"class": "entity-name"})
    heading.append_text(entity_surface)

    _render_rows(container, site.style, rows)

    sidebar = body.append_element("aside", {"class": "sidebar"})
    sidebar.append_element("p").append_text(
        f"Sponsored: visit {names.invented_word(rng, 2)} today"
    )
    footer = body.append_element("footer")
    footer.append_element("p").append_text(f"(c) 2014 {site.site_id}")
    return document


def _render_rows(
    container: ElementNode, style: str, rows: list[tuple[str, str]]
) -> None:
    """Render label/value rows in the site's layout style."""
    if style == "table":
        table = container.append_element("table", {"class": "infobox"})
        for label, value in rows:
            row = table.append_element("tr")
            row.append_element("th").append_text(label)
            row.append_element("td").append_text(value)
    elif style == "dl":
        dl = container.append_element("dl", {"class": "facts"})
        for label, value in rows:
            dl.append_element("dt").append_text(label)
            dl.append_element("dd").append_text(value)
    elif style == "ul":
        ul = container.append_element("ul", {"class": "facts"})
        for label, value in rows:
            li = ul.append_element("li")
            li.append_element("b").append_text(label)
            # Values commonly link out; the <a> also keeps the value's
            # tag path distinct from the label's once noisy tags (<b>)
            # are removed.
            li.append_element("a", {"href": "#"}).append_text(value)
    elif style == "divs":
        box = container.append_element("div", {"class": "facts"})
        for label, value in rows:
            row = box.append_element("div", {"class": "row"})
            row.append_element("div", {"class": "key"}).append_text(label)
            row.append_element("div", {"class": "val"}).append_text(value)
    else:  # pragma: no cover - guarded by LAYOUT_STYLES
        raise GenerationError(f"unknown layout style {style!r}")
