"""The seeded ground-truth world.

Every synthetic source (KB snapshots, query streams, websites, text
corpora) is generated as a noisy, partial view of one
:class:`GroundTruthWorld`.  The world doubles as the gold standard for
every evaluation: it knows the full attribute universe per class, every
entity, and every true fact (including hierarchical truths — a fact
whose value is ``Adelaide`` also makes ``South Australia`` and
``Australia`` true for the same data item, per the paper's value-
hierarchy discussion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.rdf.ontology import Attribute, Entity, Ontology, OntologyClass
from repro.rdf.store import TripleStore
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value, ValueKind
from repro.synth import names
from repro.synth.catalog import (
    CLASS_NAMES,
    AttributeSpec,
    ClassCatalog,
    build_all_catalogs,
    generate_locations,
)

_TRUTH_PROVENANCE = Provenance(source_id="world", extractor_id="truth")

_PERSON_ATTRIBUTE_HINTS = (
    "author", "director", "president", "minister", "chancellor", "producer",
    "screenwriter", "composer", "translator", "owner", "dean", "protagonist",
    "alumni", "artist", "professor",
)


@dataclass(slots=True)
class WorldConfig:
    """Parameters of the generated world.

    Defaults give a laptop-scale world (a few hundred entities) that
    still exhibits every phenomenon the paper discusses; benchmarks
    scale the counts up.
    """

    seed: int = 7
    entities_per_class: dict[str, int] = field(
        default_factory=lambda: {
            "Book": 60,
            "Film": 60,
            "Country": 40,
            "University": 50,
            "Hotel": 40,
        }
    )
    universe_sizes: dict[str, int] | None = None
    location_countries: int = 12
    location_regions: int = 4
    location_cities: int = 5
    value_pool_size: int = 24
    multi_value_max: int = 3
    alias_probability: float = 0.35

    def validate(self) -> None:
        for class_name, count in self.entities_per_class.items():
            if class_name not in CLASS_NAMES:
                raise GenerationError(f"unknown class {class_name!r}")
            if count < 1:
                raise GenerationError(
                    f"entities_per_class[{class_name!r}] must be >= 1"
                )
        if self.value_pool_size < 2:
            raise GenerationError("value_pool_size must be >= 2")
        if self.multi_value_max < 1:
            raise GenerationError("multi_value_max must be >= 1")


class GroundTruthWorld:
    """The complete synthetic world: schema, entities, facts, hierarchy."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self.catalogs: dict[str, ClassCatalog] = build_all_catalogs(
            self._rng, self.config.universe_sizes
        )
        self.hierarchy, self.cities = generate_locations(
            self._rng,
            self.config.location_countries,
            self.config.location_regions,
            self.config.location_cities,
        )
        self.ontology = Ontology()
        self.truth = TripleStore()
        # (class_name, attribute_name) -> pool of candidate lexical values
        self._value_pools: dict[tuple[str, str], list[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for class_name in self.config.entities_per_class:
            catalog = self.catalogs[class_name]
            cls = OntologyClass(
                class_name,
                attributes=[
                    Attribute(
                        spec.name,
                        functional=spec.functional,
                        value_kind=spec.value_kind,
                        hierarchical=spec.hierarchical,
                    )
                    for spec in catalog.attributes
                ],
            )
            self.ontology.add_class(cls)
            self._populate_entities(cls, catalog)

    def _populate_entities(
        self, cls: OntologyClass, catalog: ClassCatalog
    ) -> None:
        rng = self._rng
        count = self.config.entities_per_class[cls.name]
        used_names: set[str] = set()
        for index in range(count):
            name = self._fresh_entity_name(cls.name, used_names)
            entity_id = f"{cls.name.lower()}/{index:04d}"
            aliases: tuple[str, ...] = ()
            if rng.random() < self.config.alias_probability:
                alias = self._alias_for(name)
                if alias and alias != name:
                    aliases = (alias,)
            entity = Entity(entity_id, name, cls.name, aliases)
            cls.add_entity(entity)
            self._populate_facts(cls.name, catalog, entity)

    def _fresh_entity_name(self, class_name: str, used: set[str]) -> str:
        rng = self._rng
        makers = {
            "Book": names.title_name,
            "Film": names.title_name,
            "Country": names.country_name,
            "University": names.university_name,
            "Hotel": names.hotel_name,
        }
        maker = makers[class_name]
        for _ in range(2000):
            candidate = maker(rng)
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise GenerationError(f"entity name space exhausted for {class_name}")

    @staticmethod
    def _alias_for(name: str) -> str | None:
        """A natural alias: drop a leading article or reorder
        "University of X" ↔ "X University"."""
        if name.startswith("The "):
            return name[4:]
        if name.startswith("University of "):
            return f"{name[len('University of '):]} University"
        if name.endswith(" University"):
            return f"University of {name[: -len(' University')]}"
        return None

    def _populate_facts(
        self, class_name: str, catalog: ClassCatalog, entity: Entity
    ) -> None:
        rng = self._rng
        for spec in catalog.attributes:
            presence = min(0.95, 0.25 + 0.7 * spec.web_propensity)
            if rng.random() > presence:
                continue
            truth_count = (
                1
                if spec.functional
                else rng.randint(1, self.config.multi_value_max)
            )
            pool = self.value_pool(class_name, spec)
            values = rng.sample(pool, min(truth_count, len(pool)))
            for lexical in values:
                triple = Triple(
                    entity.entity_id, spec.name, Value(lexical, spec.value_kind)
                )
                self.truth.add(ScoredTriple(triple, _TRUTH_PROVENANCE, 1.0))

    # ------------------------------------------------------------------
    # Value pools
    # ------------------------------------------------------------------
    def value_pool(
        self, class_name: str, spec: AttributeSpec
    ) -> list[str]:
        """The pool of candidate values for one attribute.

        Truths are sampled from this pool, and so are *plausible wrong
        values* injected by noisy sources — which is what makes fusion
        non-trivial (wrong values look like real ones).
        """
        key = (class_name, spec.name)
        pool = self._value_pools.get(key)
        if pool is None:
            pool = self._make_value_pool(spec)
            self._value_pools[key] = pool
        return pool

    def _make_value_pool(self, spec: AttributeSpec) -> list[str]:
        rng = self._rng
        size = self.config.value_pool_size
        if spec.hierarchical:
            return rng.sample(self.cities, min(size, len(self.cities)))
        if spec.value_kind is ValueKind.NUMBER:
            magnitude = 10 ** rng.randint(1, 6)
            values = {
                str(rng.randint(max(1, magnitude // 10), magnitude))
                for _ in range(size * 2)
            }
            return sorted(values)[:size]
        if spec.value_kind is ValueKind.DATE:
            values = {
                f"{rng.randint(1850, 2014)}-{rng.randint(1, 12):02d}-"
                f"{rng.randint(1, 28):02d}"
                for _ in range(size * 2)
            }
            return sorted(values)[:size]
        if any(hint in spec.name for hint in _PERSON_ATTRIBUTE_HINTS):
            values_set: set[str] = set()
            while len(values_set) < size:
                values_set.add(names.person_name(rng))
            return sorted(values_set)
        values_set = set()
        while len(values_set) < size:
            word_count = rng.choice([1, 1, 2])
            values_set.add(
                " ".join(names.invented_word(rng, 2) for _ in range(word_count))
            )
        return sorted(values_set)

    # ------------------------------------------------------------------
    # Gold-standard queries
    # ------------------------------------------------------------------
    def classes(self) -> tuple[str, ...]:
        return self.ontology.class_names

    def entities(self, class_name: str) -> tuple[Entity, ...]:
        return self.ontology.cls(class_name).entities

    def attribute_names(self, class_name: str) -> tuple[str, ...]:
        """The full ground-truth attribute universe of a class."""
        return self.catalogs[class_name].names()

    def true_leaf_values(self, entity_id: str, attribute: str) -> set[str]:
        """The asserted (most specific) true values of a data item."""
        return {
            value.lexical for value in self.truth.objects(entity_id, attribute)
        }

    def true_values(self, entity_id: str, attribute: str) -> set[str]:
        """All true values including hierarchy generalisations.

        A leaf truth of ``Adelaide`` makes ``South Australia`` and
        ``Australia`` true too.
        """
        leaves = self.true_leaf_values(entity_id, attribute)
        expanded = set(leaves)
        for leaf in leaves:
            expanded.update(self.hierarchy.ancestors(leaf))
        return expanded

    def is_true(self, triple: Triple) -> bool:
        """Gold-standard truth of one triple (hierarchy-aware)."""
        return triple.obj.lexical in self.true_values(
            triple.subject, triple.predicate
        )

    def facts(self) -> list[Triple]:
        """Every asserted (leaf-level) true triple."""
        return self.truth.match()

    def entity_index(self) -> dict[str, Entity]:
        """Surface form → entity index across all classes."""
        return self.ontology.entity_index()
