"""Multi-tenant workload mixes: many seeded worlds, side by side.

The paper's framework is operated as *shared infrastructure* — one
runtime ingesting many heterogeneous sources for many consumers.  A
tenant here is one self-contained world: its own seeded generator, its
own base corpus and delta stream, its own ground truth.  This module
only builds the *data* side of tenancy; the serving side (isolated
per-tenant stacks behind one manager) lives in
:mod:`repro.serving.tenancy`.

Three tenant kinds reuse the existing generators unchanged:

* ``"static"`` — a :func:`~repro.synth.claims.generate_claim_world`
  corpus split into (base, deltas) by
  :func:`~repro.synth.deltas.generate_delta_stream`;
* ``"drift"`` — a :class:`~repro.synth.drift.DriftingWorld`, one delta
  per mutation epoch, truth moving underneath;
* ``"copying"`` — a :func:`~repro.synth.copying.generate_copying_world`
  corpus (copier sources replicating a victim's errors), split like
  the static kind.

Everything is a pure function of the spec: two builds of the same
:class:`TenantSpec` are byte-identical, and a tenant built inside a
mix is the same object graph as the tenant built alone — the
foundation of the cross-tenant isolation contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.incremental.delta import ClaimDelta
from repro.rdf.triple import ScoredTriple
from repro.synth.claims import ClaimWorldConfig, generate_claim_world
from repro.synth.copying import (
    CopyingConfig,
    CopyingWorld,
    generate_copying_world,
)
from repro.synth.deltas import (
    DeltaStreamConfig,
    generate_delta_stream,
    scored_from_claims,
)
from repro.synth.drift import DriftConfig, DriftingWorld

__all__ = [
    "TENANT_KINDS",
    "TenantMixConfig",
    "TenantSpec",
    "TenantWorkload",
    "build_tenant_workload",
]

TENANT_KINDS = ("static", "drift", "copying")


@dataclass(slots=True)
class TenantSpec:
    """One tenant's world, fully determined by value fields."""

    name: str
    kind: str = "static"
    seed: int = 0
    n_items: int = 24
    n_sources: int = 4
    # static/copying: how many deltas the non-base remainder splits
    # into; drift: ignored (one delta per epoch).
    parts: int = 3
    # drift only: mutation epochs after the base epoch.
    epochs: int = 3

    def validate(self) -> None:
        if not self.name:
            raise GenerationError("tenant name must be non-empty")
        if any(ch in self.name for ch in "{},= \t\n"):
            # Names become metric label values and checkpoint
            # subdirectory names; keep them trivially safe for both.
            raise GenerationError(
                f"tenant name {self.name!r} contains reserved characters"
            )
        if self.kind not in TENANT_KINDS:
            raise GenerationError(
                f"unknown tenant kind {self.kind!r}; "
                f"expected one of {TENANT_KINDS}"
            )
        if self.n_items < 1 or self.n_sources < 1:
            raise GenerationError("items and sources must be >= 1")
        if self.parts < 1:
            raise GenerationError("parts must be >= 1")
        if self.epochs < 1:
            raise GenerationError("epochs must be >= 1")


@dataclass(slots=True)
class TenantWorkload:
    """One tenant's generated data: base corpus, delta stream, truth.

    ``truth`` is the *final* ground truth (post-drift for drifting
    tenants), what the tenant's fully-drained KB is scored against.
    The kind-specific world objects ride along for the richer evals
    only they support (freshness lag, copied-error suppression).
    """

    spec: TenantSpec
    base: list[ScoredTriple] = field(default_factory=list)
    deltas: list[ClaimDelta] = field(default_factory=list)
    truth: dict = field(default_factory=dict)
    drift_world: DriftingWorld | None = None
    copying_world: CopyingWorld | None = None


def build_tenant_workload(spec: TenantSpec) -> TenantWorkload:
    """Deterministically expand one spec into its workload."""
    spec.validate()
    if spec.kind == "drift":
        world = DriftingWorld(
            DriftConfig(
                seed=spec.seed,
                n_items=spec.n_items,
                n_sources=spec.n_sources,
                epochs=spec.epochs,
            )
        )
        return TenantWorkload(
            spec=spec,
            base=list(world.base),
            deltas=world.deltas(),
            truth=world.truth_at(world.current_epoch),
            drift_world=world,
        )
    if spec.kind == "copying":
        world = generate_copying_world(
            CopyingConfig(
                seed=spec.seed,
                n_items=spec.n_items,
                n_independent=spec.n_sources,
                n_copiers=2,
                lag=1,
            )
        )
        scored = scored_from_claims(world.claims)
        base, deltas = generate_delta_stream(
            scored, DeltaStreamConfig(seed=spec.seed, parts=spec.parts)
        )
        return TenantWorkload(
            spec=spec,
            base=base,
            deltas=deltas,
            truth=world.truths,
            copying_world=world,
        )
    world = generate_claim_world(
        ClaimWorldConfig(
            seed=spec.seed,
            n_items=spec.n_items,
            n_sources=spec.n_sources,
        )
    )
    scored = scored_from_claims(world.claims)
    base, deltas = generate_delta_stream(
        scored, DeltaStreamConfig(seed=spec.seed, parts=spec.parts)
    )
    return TenantWorkload(
        spec=spec,
        base=base,
        deltas=deltas,
        truth=world.truths,
    )


@dataclass(slots=True)
class TenantMixConfig:
    """A whole fleet of tenant specs, derived or explicit.

    With ``tenants`` set those specs are used verbatim.  Otherwise
    ``n_tenants`` specs are derived: names ``tenant00..``, kinds
    cycling through ``kinds``, seeds spread as ``seed + 101 * index``
    so no two derived tenants share a world even when they share a
    kind.  Derivation is pure — the same config always yields the
    same fleet.
    """

    n_tenants: int = 3
    seed: int = 0
    kinds: tuple[str, ...] = TENANT_KINDS
    n_items: int = 24
    n_sources: int = 4
    parts: int = 3
    epochs: int = 3
    tenants: list[TenantSpec] | None = None

    def validate(self) -> None:
        if self.tenants is not None:
            if not self.tenants:
                raise GenerationError("explicit tenant list is empty")
            names = [spec.name for spec in self.tenants]
            if len(set(names)) != len(names):
                raise GenerationError(
                    f"duplicate tenant names in mix: {sorted(names)}"
                )
            for spec in self.tenants:
                spec.validate()
            return
        if self.n_tenants < 1:
            raise GenerationError("n_tenants must be >= 1")
        if not self.kinds:
            raise GenerationError("kinds must be non-empty")
        for kind in self.kinds:
            if kind not in TENANT_KINDS:
                raise GenerationError(
                    f"unknown tenant kind {kind!r}; "
                    f"expected one of {TENANT_KINDS}"
                )

    def specs(self) -> list[TenantSpec]:
        """The fleet, validated, in serving order."""
        self.validate()
        if self.tenants is not None:
            return list(self.tenants)
        return [
            TenantSpec(
                name=f"tenant{index:02d}",
                kind=self.kinds[index % len(self.kinds)],
                seed=self.seed + 101 * index,
                n_items=self.n_items,
                n_sources=self.n_sources,
                parts=self.parts,
                epochs=self.epochs,
            )
            for index in range(self.n_tenants)
        ]
