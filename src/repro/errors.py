"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class at API
boundaries without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class OntologyError(ReproError):
    """Raised for inconsistent ontology definitions or lookups."""


class HierarchyError(ReproError):
    """Raised for malformed value hierarchies (e.g. cycles)."""


class StoreError(ReproError):
    """Raised for invalid triple-store operations."""


class ParseError(ReproError):
    """Raised when HTML or a pattern expression cannot be parsed."""


class ExtractionError(ReproError):
    """Raised when an extractor is misconfigured or its input is invalid."""


class FusionError(ReproError):
    """Raised when a fusion method receives invalid claims or parameters."""


class PipelineError(ReproError):
    """Raised when the end-to-end pipeline is configured inconsistently."""


class GenerationError(ReproError):
    """Raised when a synthetic-data generator receives invalid parameters."""


class ServingError(ReproError):
    """Raised for invalid serving-layer operations.

    Covers version-handle misuse (committing a non-monotonic version)
    and stream-consumer misconfiguration; *not* raised for consumer
    task failures, which go through retry/poison handling instead.
    """


class BackpressureError(ReproError):
    """Raised when the event log sheds load instead of accepting a publish.

    Carries a machine-readable ``reason`` so producers can distinguish
    consumer lag from an absolute log bound.  Load shedding is always
    explicit — the log never silently drops an event.
    """

    def __init__(self, message: str, *, reason: str = "backpressure") -> None:
        super().__init__(message)
        self.reason = reason


class RetryExhaustedError(ReproError):
    """Raised when a task keeps failing after every allowed attempt.

    The MapReduce engine raises this once a map partition or reduce
    chunk has failed ``RetryPolicy.max_attempts`` times (the last
    underlying failure is chained as ``__cause__``).  With retries
    disabled a single failure exhausts the budget immediately.
    """


class StageTimeoutError(ReproError):
    """Raised when a pipeline stage or MapReduce task exceeds its deadline.

    Deadlines are checked against the task's *measured* duration (real
    wall time plus any injected slow-call seconds from a
    :class:`repro.faults.FaultPlan`), so tests can trigger timeouts
    deterministically without waiting.
    """


class DeltaError(ReproError):
    """Raised for invalid incremental-update deltas or delta state.

    Covers malformed :class:`repro.incremental.ClaimDelta` payloads,
    applying a delta before the incremental engine was primed, and a
    delta that would retract every remaining claim (an empty claim set
    cannot be fused, so the engine refuses to commit it).
    """


class QuarantineOverflowError(ReproError):
    """Raised when the malformed-record quarantine exceeds its capacity.

    A bounded quarantine distinguishes "a few bad records" (divert and
    continue) from "the input is systematically broken" (fail loudly
    rather than silently discarding most of a source).
    """
