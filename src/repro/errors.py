"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class at API
boundaries without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class OntologyError(ReproError):
    """Raised for inconsistent ontology definitions or lookups."""


class HierarchyError(ReproError):
    """Raised for malformed value hierarchies (e.g. cycles)."""


class StoreError(ReproError):
    """Raised for invalid triple-store operations."""


class ParseError(ReproError):
    """Raised when HTML or a pattern expression cannot be parsed."""


class ExtractionError(ReproError):
    """Raised when an extractor is misconfigured or its input is invalid."""


class FusionError(ReproError):
    """Raised when a fusion method receives invalid claims or parameters."""


class PipelineError(ReproError):
    """Raised when the end-to-end pipeline is configured inconsistently."""


class GenerationError(ReproError):
    """Raised when a synthetic-data generator receives invalid parameters."""
