"""Deterministic fault injection for the fault-tolerance layer.

Production KB construction must survive crashed workers, slow tasks and
malformed records (Dong et al., *From Data Fusion to Knowledge Fusion*;
the KBC-architecture survey calls pipeline resilience a first-class
concern).  Testing those paths with real crashes and real clocks makes
chaos tests flaky; this module makes every failure mode a pure function
of ``(scope, index, attempt)`` so a failure schedule is exactly
reproducible:

* **crash** — raise :class:`InjectedFault` when a targeted task runs
  (optionally only for its first ``attempts`` attempts, which models a
  transient fault that a retry survives);
* **slow** — add seconds to the task's *reported* duration without
  sleeping, so deadline handling is testable in microseconds;
* **corrupt** — replace an input record with a
  :class:`CorruptedRecord` carrying seeded garbage, which record
  validation then diverts to the quarantine.

A :class:`FaultPlan` is a list of :class:`FaultSpec` targets plus a
seed (used to derive the corruption payloads).  Plans are picklable, so
they ride into MapReduce worker processes alongside the task wrappers;
hooks are read-only, so a plan behaves identically under any executor.

Scope naming convention used across the repo:

* ``"map"`` / ``"reduce"`` — MapReduce task wrappers
  (:mod:`repro.mapreduce.engine`), indexed by partition/chunk;
* ``"stage:<name>"`` — pipeline stages (``stage:dom-extraction``,
  ``stage:fusion``, ...), always index 0;
* ``"records:<source>"`` — extractor input streams
  (``records:querystream``, ``records:dom``, ``records:webtext``),
  indexed by record position;
* ``"storage:flush"`` / ``"storage:compaction"`` — segment-store
  durability points (:mod:`repro.rdf.segments`), indexed by write
  phase: 0 before the segment temp is written, 1 before the segment
  ``os.replace``, 2 before the manifest ``os.replace``, 3 after the
  manifest lands but before the in-memory commit;
* ``"stream:*"`` — serving-layer consumer stages
  (:mod:`repro.serving.server`), indexed by event offset:
  ``stream:deliver`` fires as an event is taken off the log (before
  any state changes), ``stream:apply`` inside the retried apply loop
  (attempt-aware, so ``attempts=N`` models a transient consumer
  fault), ``stream:commit`` after the delta applied but before the
  version rebind (a crash here leaves reads fully pre-delta), and
  ``stream:post-commit`` after the rebind but before the offset ack
  (a crash here exercises redelivery against the dedup fence).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["CorruptedRecord", "FaultPlan", "FaultSpec", "InjectedFault"]

CRASH = "crash"
SLOW = "slow"
CORRUPT = "corrupt"


class InjectedFault(RuntimeError):
    """An artificial failure raised by a :class:`FaultPlan`.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate infrastructure failures (a worker segfault, an OOM
    kill), which the library does not raise itself.
    """


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    ``attempts`` bounds crash/slow faults to the first N attempts of
    the targeted task (``attempts <= 0`` means every attempt — a
    permanent fault); corruption is attempt-independent.  ``index`` of
    ``None`` matches every task in the scope.
    """

    kind: str
    scope: str
    index: int | None = 0
    attempts: int = 1
    seconds: float = 0.0

    def matches(self, scope: str, index: int, attempt: int) -> bool:
        return (
            self.scope == scope
            and (self.index is None or self.index == index)
            and (self.attempts <= 0 or attempt < self.attempts)
        )


@dataclass(frozen=True, slots=True)
class CorruptedRecord:
    """What a corrupt-record fault turns an input record into.

    Validators reject it (it is not a page/document/query record), so
    the quarantine diverts it; ``original_repr`` keeps a truncated
    picture of what was destroyed for the quarantine's sampled
    examples.
    """

    scope: str
    index: int
    garbage: str
    original_repr: str


@dataclass(slots=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Build plans fluently::

        plan = (
            FaultPlan(seed=7)
            .crash("map", index=0)                  # transient: attempt 0 only
            .slow("stage:dom-extraction", seconds=90.0)
            .corrupt("records:querystream", index=12)
        )

    The hooks (:meth:`task_delay`, :meth:`corrupt_record`) never mutate
    the plan, so the same plan object can be shared across executors,
    worker processes and repeated runs.
    """

    seed: int = 0
    specs: list[FaultSpec] = field(default_factory=list)

    # -- builders ------------------------------------------------------
    def crash(
        self, scope: str, *, index: int | None = 0, attempts: int = 1
    ) -> "FaultPlan":
        """Schedule an :class:`InjectedFault` for a task's first attempts."""
        self.specs.append(FaultSpec(CRASH, scope, index, attempts))
        return self

    def slow(
        self,
        scope: str,
        *,
        seconds: float,
        index: int | None = 0,
        attempts: int = 1,
    ) -> "FaultPlan":
        """Schedule extra *reported* seconds for a task (no real sleep)."""
        self.specs.append(FaultSpec(SLOW, scope, index, attempts, seconds))
        return self

    def corrupt(self, scope: str, *, index: int) -> "FaultPlan":
        """Schedule one input record to be replaced with seeded garbage."""
        self.specs.append(FaultSpec(CORRUPT, scope, index))
        return self

    # -- hooks ---------------------------------------------------------
    def task_delay(self, scope: str, index: int, attempt: int) -> float:
        """Crash/slow hook called by task wrappers before/around a task.

        Raises :class:`InjectedFault` if a crash spec matches; otherwise
        returns the summed injected seconds of matching slow specs.
        """
        extra = 0.0
        for spec in self.specs:
            if not spec.matches(scope, index, attempt):
                continue
            if spec.kind == CRASH:
                raise InjectedFault(
                    f"injected crash: {scope} task {index} "
                    f"(attempt {attempt})"
                )
            if spec.kind == SLOW:
                extra += spec.seconds
        return extra

    def corrupt_record(self, scope: str, index: int, record: object):
        """Corruption hook: return the record, or its corrupted stand-in."""
        for spec in self.specs:
            if spec.kind == CORRUPT and spec.scope == scope and (
                spec.index is None or spec.index == index
            ):
                return CorruptedRecord(
                    scope=scope,
                    index=index,
                    garbage=self._garbage(scope, index),
                    original_repr=repr(record)[:120],
                )
        return record

    def _garbage(self, scope: str, index: int) -> str:
        digest = hashlib.sha256(
            f"{self.seed}:{scope}:{index}".encode()
        ).hexdigest()
        return f"\x00corrupt[{digest[:16]}]"
