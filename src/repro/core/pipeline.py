"""The end-to-end KB-construction pipeline (Figure 1).

Orchestrates both phases of the framework over a ground-truth world:

Knowledge extraction
    1.  build KB snapshots (Freebase + DBpedia) and extract/combine
        their attributes and claims;
    2.  generate the query stream and extract credible attributes;
    3.  form per-class seed sets from the two accurate sources;
    4.  generate websites and run the DOM extractor (Algorithm 1);
    5.  generate Web texts and run the seed-driven text extractor;
    6.  resolve attribute misspellings/synonyms across extractors;
    7.  assign unified confidence scores to every triple.

Knowledge fusion
    8.  fuse all claims with the combined method (multi-truth +
        hierarchy + correlations + confidence);
    9.  evaluate against the world (gold standard by construction);
    10. augment the Freebase snapshot with the fused knowledge.

Extraction parallelism
    The extractors are independent given their inputs, so with
    ``PipelineConfig.parallelism > 1`` the pipeline runs them
    concurrently in two phases that respect the data dependencies:

    * phase A — KB snapshot construction + KB extraction runs next to
      query-log generation (the query-stream *extraction* needs Set_E
      from the Freebase snapshot, so it runs as soon as phase A joins);
    * phase B — after seed-set construction, the DOM and Web-text
      extractors (the two heaviest stages) run concurrently.

    Stage bodies are module-level functions executed on a
    ``concurrent.futures`` pool (``stage_executor`` picks processes or
    threads).  Every stage is a deterministic function of the world
    and its config — the synthetic generators seed their own RNGs — so
    concurrent output is identical to serial output; per-stage wall
    times are measured inside the workers and land in the stage report
    exactly as in a serial run, while phase wall-clock times are kept
    separately in ``PipelineReport.extraction_wall``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.augmentation import AugmentationReport, augment_kb
from repro.errors import PipelineError
from repro.core.confidence import ConfidenceConfig, ConfidenceScorer
from repro.entity.discovery import (
    JointEntityResolver,
    ResolutionOutcome,
    resolve_mention_triples,
)
from repro.entity.linking import EntityLinker
from repro.entity.resolution import (
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)
from repro.evalx.metrics import (
    TruthDiscoveryReport,
    evaluate_fusion,
    remap_subjects,
)
from repro.extract.base import ExtractorOutput
from repro.extract.dom import DomExtractorConfig, DomTreeExtractor
from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.extract.querystream import (
    QueryStreamConfig,
    QueryStreamExtractor,
    QueryStreamStats,
)
from repro.extract.seeds import SeedSet, build_seed_sets
from repro.extract.webtext import WebTextExtractor, WebTextExtractorConfig
from repro.fusion.base import ClaimSet, FusionResult
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.synth.kb_snapshots import KbPairConfig, build_kb_pair
from repro.synth.querylog import QueryLogConfig, generate_query_log
from repro.synth.websites import WebsiteConfig, generate_websites
from repro.synth.webtext import WebTextConfig, generate_webtext
from repro.synth.world import GroundTruthWorld, WorldConfig


@dataclass(slots=True)
class PipelineConfig:
    """All knobs of the end-to-end run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    kb_pair: KbPairConfig = field(default_factory=KbPairConfig)
    querylog: QueryLogConfig = field(default_factory=QueryLogConfig)
    querystream: QueryStreamConfig = field(default_factory=QueryStreamConfig)
    websites: WebsiteConfig = field(default_factory=WebsiteConfig)
    webtext: WebTextConfig = field(default_factory=WebTextConfig)
    dom: DomExtractorConfig = field(default_factory=DomExtractorConfig)
    webtext_extractor: WebTextExtractorConfig = field(
        default_factory=WebTextExtractorConfig
    )
    confidence: ConfidenceConfig = field(default_factory=ConfidenceConfig)
    seed_min_support: int = 1
    # New-entity creation (Sec. 3.1): when on, Set_E is still the
    # Freebase snapshot's entity sets, but pages naming unknown
    # entities harvest mention facts, and joint resolution links or
    # clusters them into new entities before fusion.
    discover_new_entities: bool = False
    # Functional/non-functional handling: "schema" uses the world
    # catalogs' functional flags; "estimated" derives functionality
    # degrees from the claims (repro.fusion.functionality) — the
    # unsupervised option the paper's Sec. 1 calls for.
    functionality_source: str = "schema"
    use_hierarchy: bool = True
    use_source_correlations: bool = True
    use_extractor_correlations: bool = True
    use_confidence: bool = True
    resolve_attributes: bool = True
    # Extraction parallelism: 1 runs every stage serially (the
    # original behaviour); >= 2 runs independent extraction stages
    # concurrently.  Output is identical either way.
    parallelism: int = 1
    # Pool flavour for parallel stages: "process" sidesteps the GIL for
    # these CPU-bound extractors; "thread" avoids pickling overhead.
    stage_executor: str = "process"
    # Fusion parallelism: >= 2 shards the core fuse over the connected
    # components of the claim graph (repro.fusion.sharding) on that
    # many workers.  Truths are identical to the serial run; beliefs
    # match bit-for-bit at tolerance 0 (see the sharding module's
    # early-exit caveat).
    fusion_parallelism: int = 1
    # Mapreduce executor for sharded fusion: "process" or "serial".
    fusion_executor: str = "process"


@dataclass(slots=True)
class StageTiming:
    """Wall-clock seconds of one pipeline stage."""

    stage: str
    seconds: float
    detail: str = ""


@dataclass(slots=True)
class PipelineReport:
    """Everything an end-to-end run produced."""

    timings: list[StageTiming] = field(default_factory=list)
    seed_sizes: dict[str, int] = field(default_factory=dict)
    query_stats: QueryStreamStats | None = None
    attribute_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    triple_counts: dict[str, int] = field(default_factory=dict)
    fusion_result: FusionResult | None = None
    fusion_report: TruthDiscoveryReport | None = None
    augmentation: AugmentationReport | None = None
    entity_resolution: ResolutionOutcome | None = None
    # Wall-clock seconds of each concurrent extraction phase (empty on
    # serial runs).  Stage timings above always hold per-stage work
    # time, so ``sum(stage seconds) - extraction_wall`` is the time
    # parallelism saved.
    extraction_wall: dict[str, float] = field(default_factory=dict)
    # Wall-clock seconds of the fuse call alone (the fusion stage
    # timing also covers claim-set assembly and oracle construction).
    fusion_wall: float = 0.0
    # Connected-component accounting of a sharded fusion run (empty on
    # serial fusion): components / workers / executor / largest_claims
    # / component_claims.
    fusion_shards: dict = field(default_factory=dict)

    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)


# ----------------------------------------------------------------------
# Extraction stage bodies.  Module-level (hence picklable) functions of
# (world, config) so they can run inline, on a thread pool, or in a
# worker process interchangeably; each measures its own wall time.


def _kb_stage(world: GroundTruthWorld, kb_pair_config: KbPairConfig):
    """Stage 1: build the KB snapshots and extract/combine their claims."""
    started = time.perf_counter()
    freebase, dbpedia = build_kb_pair(world, kb_pair_config)
    freebase_output = KbExtractor(freebase).extract()
    dbpedia_output = KbExtractor(dbpedia).extract()
    kb_output = combine_kb_outputs([freebase_output, dbpedia_output])
    return freebase, dbpedia, kb_output, time.perf_counter() - started


def _querylog_stage(world: GroundTruthWorld, querylog_config: QueryLogConfig):
    """Stage 2a: generate the query stream (extraction needs Set_E)."""
    started = time.perf_counter()
    log = generate_query_log(world, querylog_config)
    return log, time.perf_counter() - started


def _dom_stage(
    entity_index,
    seeds: dict[str, SeedSet],
    dom_config: DomExtractorConfig,
    world: GroundTruthWorld,
    website_config: WebsiteConfig,
):
    """Stage 4: generate websites and run Algorithm 1 over them."""
    started = time.perf_counter()
    sites = generate_websites(world, website_config)
    extractor = DomTreeExtractor(entity_index, seeds, dom_config)
    output = extractor.extract(sites)
    return (
        output,
        extractor.mention_classes,
        time.perf_counter() - started,
    )


def _webtext_stage(
    entity_index,
    seeds: dict[str, SeedSet],
    kb_triples,
    world: GroundTruthWorld,
    webtext_config: WebTextConfig,
    extractor_config: WebTextExtractorConfig,
):
    """Stage 5: generate Web texts and run the seed-driven extractor."""
    started = time.perf_counter()
    documents = generate_webtext(world, webtext_config)
    extractor = WebTextExtractor(
        entity_index, seeds, kb_triples, extractor_config
    )
    extractor.learn(documents)
    output = extractor.extract(documents)
    return output, time.perf_counter() - started


class KnowledgeBaseConstructionPipeline:
    """Run the whole Figure-1 framework over one world."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        world: GroundTruthWorld | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.world = world or GroundTruthWorld(self.config.world)
        # Populated by run():
        self.freebase = None
        self.dbpedia = None
        self.entity_index: dict[str, object] = {}
        self.outputs: dict[str, ExtractorOutput] = {}
        self.seeds: dict[str, SeedSet] = {}
        self.claims: ClaimSet | None = None

    # ------------------------------------------------------------------
    def run(self) -> PipelineReport:
        report = PipelineReport()
        world = self.world
        cfg = self.config
        if cfg.stage_executor not in ("process", "thread"):
            raise PipelineError(
                "stage_executor must be 'process' or 'thread', "
                f"got {cfg.stage_executor!r}"
            )
        if cfg.fusion_executor not in ("process", "serial"):
            raise PipelineError(
                "fusion_executor must be 'process' or 'serial', "
                f"got {cfg.fusion_executor!r}"
            )
        if cfg.fusion_parallelism < 1:
            raise PipelineError("fusion_parallelism must be >= 1")
        parallel = max(1, cfg.parallelism) > 1
        pool = None
        if parallel:
            pool_cls = (
                ProcessPoolExecutor
                if cfg.stage_executor == "process"
                else ThreadPoolExecutor
            )
            pool = pool_cls(max_workers=min(2, cfg.parallelism))
        try:
            mention_classes = self._run_extraction(report, pool)
        finally:
            if pool is not None:
                pool.shutdown()

        all_triples = [
            scored
            for output in self.outputs.values()
            for scored in output.triples
        ]

        # -- 5b. Joint entity linking + discovery ---------------------------
        if cfg.discover_new_entities:
            with _timed(report, "entity-resolution") as timing:
                resolver = JointEntityResolver(
                    EntityLinker(self.entity_index)
                )
                all_triples, outcome = resolve_mention_triples(
                    all_triples, mention_classes, resolver
                )
                report.entity_resolution = outcome
                timing.detail = (
                    f"{len(outcome.linked)} linked, "
                    f"{len(outcome.clusters)} new entities"
                )

        # -- 6. Attribute resolution ---------------------------------------
        if cfg.resolve_attributes:
            with _timed(report, "attribute-resolution") as timing:
                all_triples = self._resolve_attributes(all_triples)
                timing.detail = f"{len(all_triples)} claims"

        # -- 7. Confidence scoring ----------------------------------------
        with _timed(report, "confidence") as timing:
            scorer = ConfidenceScorer(cfg.confidence)
            all_triples = scorer.score_batch(all_triples)
            for output in self.outputs.values():
                for per_class in output.attributes.values():
                    for record in per_class.values():
                        record.confidence = scorer.score_attribute(record)
            timing.detail = f"{len(all_triples)} claims"

        for extractor_id, output in self.outputs.items():
            report.attribute_counts[extractor_id] = {
                class_name: output.attribute_count(class_name)
                for class_name in world.classes()
            }
            report.triple_counts[extractor_id] = len(output.triples)

        # -- 8. Fusion -----------------------------------------------------
        with _timed(report, "fusion") as timing:
            self.claims = ClaimSet.from_scored_triples(all_triples)
            if cfg.functionality_source == "estimated":
                from repro.fusion.functionality import (
                    functional_oracle_from_claims,
                )

                functional_of = functional_oracle_from_claims(self.claims)
            elif cfg.functionality_source == "schema":
                functional_of = self._functional_oracle()
            else:
                raise PipelineError(
                    "functionality_source must be 'schema' or 'estimated', "
                    f"got {cfg.functionality_source!r}"
                )
            fusion = KnowledgeFusion(
                hierarchy=world.hierarchy if cfg.use_hierarchy else None,
                functional_of=functional_of,
                use_source_correlations=cfg.use_source_correlations,
                use_extractor_correlations=cfg.use_extractor_correlations,
                use_confidence=cfg.use_confidence,
                parallelism=cfg.fusion_parallelism,
                fusion_executor=cfg.fusion_executor,
            )
            fuse_started = time.perf_counter()
            result = fusion.fuse(self.claims)
            report.fusion_wall = time.perf_counter() - fuse_started
            shard_stats = fusion.last_shard_stats
            if shard_stats is not None:
                report.fusion_shards = {
                    "components": shard_stats.components,
                    "workers": shard_stats.workers,
                    "executor": shard_stats.executor,
                    "largest_claims": shard_stats.largest_claims,
                    "component_claims": shard_stats.component_claims,
                }
            report.fusion_result = result
            timing.detail = (
                f"{len(self.claims)} claims, {len(result.truths)} items"
            )

        # -- 9. Evaluation --------------------------------------------------
        with _timed(report, "evaluation"):
            evaluated = result
            if report.entity_resolution is not None:
                # Resolve discovered-entity ids back to gold identities
                # (evaluation-only knowledge: the cluster names refer to
                # real world entities that were absent from Set_E).
                gold_index = world.entity_index()
                mapping: dict[str, str] = {}
                for cluster in report.entity_resolution.clusters:
                    for surface in cluster.surfaces:
                        entity = gold_index.get(surface.lower())
                        if entity is not None:
                            mapping[cluster.cluster_id] = entity.entity_id
                            break
                evaluated = remap_subjects(result, mapping)
            report.fusion_report = evaluate_fusion(world, evaluated)

        # -- 10. Augmentation ------------------------------------------------
        with _timed(report, "augmentation") as timing:
            discovered_entities = (
                report.entity_resolution.new_entities()
                if report.entity_resolution is not None
                else None
            )
            report.augmentation = augment_kb(
                self.freebase,
                list(self.outputs.values()),
                result,
                self.claims,
                class_of_subject=self._class_of_subject,
                new_entities=discovered_entities,
            )
            timing.detail = (
                f"{report.augmentation.new_facts} facts, "
                f"{report.augmentation.total_new_attributes()} attributes, "
                f"{report.augmentation.new_entities} entities"
            )
        return report

    # ------------------------------------------------------------------
    def _run_extraction(self, report: PipelineReport, pool) -> dict[str, str]:
        """Stages 1-5: run the four extractors, serially or concurrently.

        Returns the DOM extractor's mention-surface → class map (used by
        joint entity resolution).  With a pool, phase A runs KB-snapshot
        extraction next to query-log generation and phase B runs the DOM
        and Web-text extractors side by side; stage timings are measured
        inside the stage bodies either way, so the report is comparable
        across modes.
        """
        world = self.world
        cfg = self.config

        # -- 1+2a. KB snapshots + query-log generation (phase A) ---------
        if pool is not None:
            phase_started = time.perf_counter()
            kb_future = pool.submit(_kb_stage, world, cfg.kb_pair)
            log_future = pool.submit(_querylog_stage, world, cfg.querylog)
            self.freebase, self.dbpedia, kb_output, kb_seconds = (
                kb_future.result()
            )
            log, log_seconds = log_future.result()
            report.extraction_wall["phase-a"] = (
                time.perf_counter() - phase_started
            )
        else:
            self.freebase, self.dbpedia, kb_output, kb_seconds = _kb_stage(
                world, cfg.kb_pair
            )
            log, log_seconds = _querylog_stage(world, cfg.querylog)
        self.outputs["kb"] = kb_output
        report.timings.append(
            StageTiming(
                "kb-extraction", kb_seconds,
                f"{len(kb_output.triples)} claims",
            )
        )

        self.entity_index = self._set_e_index()

        # -- 2b. Query-stream extraction (needs Set_E) --------------------
        started = time.perf_counter()
        extractor = QueryStreamExtractor(self.entity_index, cfg.querystream)
        query_output, query_stats = extractor.extract(log)
        self.outputs["querystream"] = query_output
        report.query_stats = query_stats
        report.timings.append(
            StageTiming(
                "query-stream",
                log_seconds + (time.perf_counter() - started),
                f"{len(log)} records",
            )
        )

        # -- 3. Seed sets --------------------------------------------------
        self.seeds = build_seed_sets(
            [kb_output, query_output],
            world.classes(),
            min_support=cfg.seed_min_support,
        )
        report.seed_sizes = {
            class_name: len(seed) for class_name, seed in self.seeds.items()
        }

        # -- 4+5. DOM + Web-text extraction (phase B) ----------------------
        dom_config = cfg.dom
        if cfg.discover_new_entities:
            dom_config = replace(dom_config, allow_mention_anchors=True)
        if pool is not None:
            phase_started = time.perf_counter()
            dom_future = pool.submit(
                _dom_stage, self.entity_index, self.seeds, dom_config,
                world, cfg.websites,
            )
            text_future = pool.submit(
                _webtext_stage, self.entity_index, self.seeds,
                kb_output.triples, world, cfg.webtext,
                cfg.webtext_extractor,
            )
            dom_output, mention_classes, dom_seconds = dom_future.result()
            text_output, text_seconds = text_future.result()
            report.extraction_wall["phase-b"] = (
                time.perf_counter() - phase_started
            )
        else:
            dom_output, mention_classes, dom_seconds = _dom_stage(
                self.entity_index, self.seeds, dom_config,
                world, cfg.websites,
            )
            text_output, text_seconds = _webtext_stage(
                self.entity_index, self.seeds, kb_output.triples,
                world, cfg.webtext, cfg.webtext_extractor,
            )
        self.outputs["dom"] = dom_output
        self.outputs["webtext"] = text_output
        report.timings.append(
            StageTiming(
                "dom-extraction", dom_seconds,
                f"{len(dom_output.triples)} claims",
            )
        )
        report.timings.append(
            StageTiming(
                "webtext-extraction", text_seconds,
                f"{len(text_output.triples)} claims",
            )
        )
        return mention_classes

    # ------------------------------------------------------------------
    def _set_e_index(self):
        """Set_E: representative entities of the Freebase snapshot."""
        index: dict[str, object] = {}
        for view in self.freebase.classes.values():
            for entity in view.entities:
                for form in entity.surface_forms():
                    index.setdefault(form.lower(), entity)
        return index

    def _class_of_subject(self, subject: str) -> str | None:
        parts = subject.split("/")
        head = parts[1] if parts[0] == "new" and len(parts) > 1 else parts[0]
        for class_name in self.world.classes():
            if head == class_name.lower():
                return class_name
        return None

    def _functional_oracle(self):
        functional: dict[str, bool] = {}
        for class_name in self.world.classes():
            for spec in self.world.catalogs[class_name].attributes:
                functional.setdefault(spec.name, spec.functional)
        return lambda predicate: functional.get(predicate, False)

    def _resolve_attributes(self, triples):
        profiles_by_class: dict[str, dict[str, set]] = {}
        support_by_class: dict[str, dict[str, int]] = {}
        for output in self.outputs.values():
            for class_name, per_class in output.attributes.items():
                support = support_by_class.setdefault(class_name, {})
                for name, record in per_class.items():
                    support[name] = support.get(name, 0) + record.support
        profiles = build_value_profiles(triples)
        resolutions = {}
        for class_name, support in support_by_class.items():
            class_profiles = {
                name: profile
                for name, profile in profiles.items()
                if name in support
            }
            resolutions[class_name] = AttributeResolver(
                class_name, support, class_profiles
            ).run()
        return apply_resolution(triples, resolutions, self._class_of_subject)


class _timed:
    """Context manager recording a stage timing into a report."""

    def __init__(self, report: PipelineReport, stage: str) -> None:
        self.report = report
        self.timing = StageTiming(stage, 0.0)

    def __enter__(self) -> StageTiming:
        self._start = time.perf_counter()
        return self.timing

    def __exit__(self, exc_type, exc, tb) -> None:
        self.timing.seconds = time.perf_counter() - self._start
        if exc_type is None:
            self.report.timings.append(self.timing)
