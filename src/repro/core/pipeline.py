"""The end-to-end KB-construction pipeline (Figure 1).

Orchestrates both phases of the framework over a ground-truth world:

Knowledge extraction
    1.  build KB snapshots (Freebase + DBpedia) and extract/combine
        their attributes and claims;
    2.  generate the query stream and extract credible attributes;
    3.  form per-class seed sets from the two accurate sources;
    4.  generate websites and run the DOM extractor (Algorithm 1);
    5.  generate Web texts and run the seed-driven text extractor;
    6.  resolve attribute misspellings/synonyms across extractors;
    7.  assign unified confidence scores to every triple.

Knowledge fusion
    8.  fuse all claims with the combined method (multi-truth +
        hierarchy + correlations + confidence);
    9.  evaluate against the world (gold standard by construction);
    10. augment the Freebase snapshot with the fused knowledge.

Extraction parallelism
    The extractors are independent given their inputs, so with
    ``PipelineConfig.parallelism > 1`` the pipeline runs them
    concurrently in two phases that respect the data dependencies:

    * phase A — KB snapshot construction + KB extraction runs next to
      query-log generation (the query-stream *extraction* needs Set_E
      from the Freebase snapshot, so it runs as soon as phase A joins);
    * phase B — after seed-set construction, the DOM and Web-text
      extractors (the two heaviest stages) run concurrently.

    Stage bodies are module-level functions executed on a
    ``concurrent.futures`` pool (``stage_executor`` picks processes or
    threads).  Every stage is a deterministic function of the world
    and its config — the synthetic generators seed their own RNGs — so
    concurrent output is identical to serial output; per-stage wall
    times are measured inside the workers and land in the stage report
    exactly as in a serial run, while phase wall-clock times are kept
    separately in ``PipelineReport.extraction_wall``.

Fault tolerance
    The fusion framework is meant to run over noisy Web-scale inputs
    where individual extractors crash, hang or emit garbage.  Three
    mechanisms keep a run alive (all deterministic, all testable
    without wall-clock waits):

    * **Stage isolation** — each extraction stage runs inside a guard:
      an exception (or a deadline overrun against
      ``PipelineConfig.stage_timeout``) marks the stage ``degraded`` in
      ``PipelineReport.health`` and the pipeline continues with the
      remaining sources.  If fewer than ``min_sources`` extractor
      outputs survive, the run aborts with :class:`PipelineError` —
      fusing one source is no fusion at all.
    * **Record quarantine** — malformed input records (and records
      corrupted by an injected fault plan) are diverted to a
      :class:`~repro.core.quarantine.Quarantine` sink with per-source
      counts and sampled examples instead of crashing a stage.
    * **Checkpoint/resume** — with ``checkpoint_dir`` set, extraction
      and claim-preparation outputs are spilled via
      :class:`~repro.core.checkpoint.CheckpointStore`;
      ``run(resume=True)`` restores completed stages (fingerprinted
      against the data-determining config, so a changed seed or knob
      invalidates old checkpoints).  Degraded runs never write
      checkpoints — resume only ever restores healthy state.

    ``PipelineConfig.retry`` and ``fault_plan`` ride through to the
    sharded-fusion MapReduce job, so transient worker crashes during
    fusion are retried with deterministic backoff (see
    :mod:`repro.mapreduce.engine` and :mod:`repro.faults`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.augmentation import AugmentationReport, augment_kb
from repro.core.checkpoint import CheckpointStore, config_fingerprint
from repro.core.quarantine import Quarantine, guard_records
from repro.errors import PipelineError, StageTimeoutError
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, MetricsSnapshot, SpanTracer
from repro.textproc.memo import clear_similarity_caches, publish_cache_metrics
from repro.core.confidence import ConfidenceConfig, ConfidenceScorer
from repro.entity.blocking import BlockingStats
from repro.entity.discovery import (
    JointEntityResolver,
    ResolutionOutcome,
    resolve_mention_triples,
)
from repro.entity.linking import EntityLinker
from repro.entity.resolution import (
    AttributeResolver,
    apply_resolution,
    build_value_profiles,
)
from repro.evalx.freshness import FreshnessReport, freshness_report
from repro.evalx.metrics import (
    TruthDiscoveryReport,
    evaluate_fusion,
    remap_subjects,
)
from repro.evalx.tables import format_ratio, render_table
from repro.extract.base import ExtractorOutput
from repro.extract.dom import DomExtractorConfig, DomTreeExtractor
from repro.extract.kb import KbExtractor, combine_kb_outputs
from repro.extract.querystream import (
    QueryStreamConfig,
    QueryStreamExtractor,
    QueryStreamStats,
)
from repro.extract.seeds import SeedSet, build_seed_sets
from repro.extract.webtext import WebTextExtractor, WebTextExtractorConfig
from repro.fusion.base import ClaimSet, FusionResult
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.mapreduce.engine import RetryPolicy
from repro.synth.copying import CopyingConfig, generate_copying_world
from repro.synth.drift import DriftConfig, DriftingWorld
from repro.synth.tenants import TenantMixConfig
from repro.synth.kb_snapshots import KbPairConfig, build_kb_pair
from repro.synth.querylog import QueryLogConfig, QueryRecord, generate_query_log
from repro.synth.websites import WebPage, WebsiteConfig, generate_websites
from repro.synth.webtext import TextDocument, WebTextConfig, generate_webtext
from repro.synth.world import GroundTruthWorld, WorldConfig

# The four extraction stage names, in pipeline order (used to filter
# report fragments into the extraction checkpoint).
EXTRACTION_STAGES = (
    "kb-extraction",
    "query-stream",
    "dom-extraction",
    "webtext-extraction",
)


@dataclass(slots=True)
class PipelineConfig:
    """All knobs of the end-to-end run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    kb_pair: KbPairConfig = field(default_factory=KbPairConfig)
    querylog: QueryLogConfig = field(default_factory=QueryLogConfig)
    querystream: QueryStreamConfig = field(default_factory=QueryStreamConfig)
    websites: WebsiteConfig = field(default_factory=WebsiteConfig)
    webtext: WebTextConfig = field(default_factory=WebTextConfig)
    dom: DomExtractorConfig = field(default_factory=DomExtractorConfig)
    webtext_extractor: WebTextExtractorConfig = field(
        default_factory=WebTextExtractorConfig
    )
    confidence: ConfidenceConfig = field(default_factory=ConfidenceConfig)
    seed_min_support: int = 1
    # New-entity creation (Sec. 3.1): when on, Set_E is still the
    # Freebase snapshot's entity sets, but pages naming unknown
    # entities harvest mention facts, and joint resolution links or
    # clusters them into new entities before fusion.
    discover_new_entities: bool = False
    # Functional/non-functional handling: "schema" uses the world
    # catalogs' functional flags; "estimated" derives functionality
    # degrees from the claims (repro.fusion.functionality) — the
    # unsupervised option the paper's Sec. 1 calls for.
    functionality_source: str = "schema"
    use_hierarchy: bool = True
    use_source_correlations: bool = True
    use_extractor_correlations: bool = True
    use_confidence: bool = True
    resolve_attributes: bool = True
    # Entity-matching blocking (MinHash/LSH + q-gram candidate
    # generation, repro.entity.blocking): the 3-tier cascade that keeps
    # linking/discovery/attribute resolution sub-quadratic.  Verdicts
    # are identical either way; False restores the reference
    # brute-force scans.
    entity_blocking: bool = True
    # Extraction parallelism: 1 runs every stage serially (the
    # original behaviour); >= 2 runs independent extraction stages
    # concurrently.  Output is identical either way.
    parallelism: int = 1
    # Pool flavour for parallel stages: "process" sidesteps the GIL for
    # these CPU-bound extractors; "thread" avoids pickling overhead.
    stage_executor: str = "process"
    # Fusion parallelism: >= 2 shards the core fuse over the connected
    # components of the claim graph (repro.fusion.sharding) on that
    # many workers.  Truths are identical to the serial run; beliefs
    # match bit-for-bit at tolerance 0 (see the sharding module's
    # early-exit caveat).
    fusion_parallelism: int = 1
    # Mapreduce executor for sharded fusion: "process" or "serial".
    fusion_executor: str = "process"
    # Convergence tolerance forwarded to the multi-truth core; None
    # keeps the core's default.  Set 0.0 to pin the iteration count —
    # the regime in which run_incremental() is byte-identical to a
    # full re-fusion.
    fusion_tolerance: float | None = None
    # -- Fault tolerance ------------------------------------------------
    # Retry policy for the sharded-fusion MapReduce job (None keeps the
    # legacy single-attempt behaviour).
    retry: RetryPolicy | None = None
    # Deterministic fault plan (repro.faults) injected into extraction
    # stage guards, record validation and the fusion job.  Testing
    # only; None in production runs.
    fault_plan: FaultPlan | None = None
    # Deadline in seconds for each extraction stage (measured work time
    # plus any injected slow-call seconds); overruns degrade the stage.
    stage_timeout: float | None = None
    # Minimum number of healthy extractor outputs required to proceed
    # to fusion; fewer raises PipelineError.
    min_sources: int = 1
    # Quarantine capacity: total diverted records above this raise
    # QuarantineOverflowError (losing most of a feed silently would be
    # worse than failing).
    quarantine_capacity: int = 1000
    # Directory for stage checkpoints (None disables checkpointing).
    checkpoint_dir: str | None = None
    # -- Storage --------------------------------------------------------
    # Claim-store backend behind the incremental engine's TripleStore:
    # "memory" keeps the original dict-resident store; "segment" spills
    # claims to mmapped LSM-style segment files under storage_dir, so
    # the corpus is disk-bound instead of RAM-bound.  Fusion verdicts
    # are byte-identical either way (the backends share one claim
    # iteration order; see repro.rdf.backend).
    storage_backend: str = "memory"
    # Segment-file directory, required when storage_backend="segment".
    # The directory is owned by the run lineage: reopening it primes
    # from the last flushed state (adds of already-present claims
    # deduplicate away).
    storage_dir: str | None = None
    # Memtable entries that trigger an automatic segment flush.
    memtable_limit: int = 8192
    # -- Serving --------------------------------------------------------
    # Event-log backlog bound for Pipeline.serve(): once the serving
    # consumer lags this many events behind the head, publishes are
    # rejected with BackpressureError (explicit load shedding; the log
    # never drops silently).
    serving_log_capacity: int = 1024
    # -- Scenarios ------------------------------------------------------
    # Default drifting-world scenario for run_drift() (None runs the
    # DriftConfig defaults); run_drift(config) overrides per call.
    drift: DriftConfig | None = None
    # Default copying-world scenario for run_copying().
    copying: CopyingConfig | None = None
    # Default multi-tenant mix for run_tenants() (None runs the
    # TenantMixConfig defaults); run_tenants(config) overrides per
    # call.  Tenant checkpoints land under checkpoint_dir/<tenant>.
    tenants: TenantMixConfig | None = None


@dataclass(slots=True)
class StageTiming:
    """Wall-clock seconds of one pipeline stage."""

    stage: str
    seconds: float
    detail: str = ""


@dataclass(slots=True)
class PipelineHealth:
    """Fault-tolerance accounting of one run (JSON-ready via to_dict)."""

    # "ok" or "degraded" (at least one stage was isolated or skipped).
    status: str = "ok"
    # stage name -> reason it was degraded/skipped.
    degraded: dict[str, str] = field(default_factory=dict)
    # Extractor outputs that survived extraction (sorted source ids).
    active_sources: list[str] = field(default_factory=list)
    min_sources: int = 1
    # Stages restored from a checkpoint instead of recomputed.
    resumed_stages: list[str] = field(default_factory=list)
    # Quarantine.to_dict() snapshot: total / per-source counts / samples.
    quarantined: dict = field(default_factory=dict)
    # Fusion-job retry counters (attempts/retries/timed_out_tasks) when
    # a retry policy or fault plan was active.
    retry: dict = field(default_factory=dict)

    def mark_degraded(self, stage: str, reason: str) -> None:
        self.status = "degraded"
        self.degraded.setdefault(stage, reason)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "degraded": dict(sorted(self.degraded.items())),
            "active_sources": list(self.active_sources),
            "min_sources": self.min_sources,
            "resumed_stages": list(self.resumed_stages),
            "quarantined": self.quarantined
            or {"total": 0, "counts": {}, "samples": {}},
            "retry": dict(self.retry),
        }


@dataclass(slots=True)
class PipelineReport:
    """Everything an end-to-end run produced."""

    timings: list[StageTiming] = field(default_factory=list)
    seed_sizes: dict[str, int] = field(default_factory=dict)
    query_stats: QueryStreamStats | None = None
    attribute_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    triple_counts: dict[str, int] = field(default_factory=dict)
    fusion_result: FusionResult | None = None
    fusion_report: TruthDiscoveryReport | None = None
    augmentation: AugmentationReport | None = None
    entity_resolution: ResolutionOutcome | None = None
    # Wall-clock seconds of each concurrent extraction phase (empty on
    # serial runs).  Stage timings above always hold per-stage work
    # time, so ``sum(stage seconds) - extraction_wall`` is the time
    # parallelism saved.
    extraction_wall: dict[str, float] = field(default_factory=dict)
    # Wall-clock seconds of the fuse call alone (the fusion stage
    # timing also covers claim-set assembly and oracle construction).
    fusion_wall: float = 0.0
    # Connected-component accounting of a sharded fusion run (empty on
    # serial fusion): components / workers / executor / largest_claims
    # / component_claims.
    fusion_shards: dict = field(default_factory=dict)
    # Degradation / quarantine / retry / resume accounting.
    health: PipelineHealth = field(default_factory=PipelineHealth)
    # True end-to-end wall clock of run(), measured around the whole
    # thing.  Never the sum of stage timings: stages overlap under a
    # concurrent stage_executor, so that sum double-counts.
    wall_seconds: float = 0.0
    # Metric snapshot of the run (counters/gauges/histograms across
    # every instrumented layer); None only on hand-built reports.
    metrics: MetricsSnapshot | None = None
    # JSON span-trace tree of the run (repro.obs.trace shape).
    trace: dict | None = None

    def cumulative_stage_seconds(self) -> float:
        """Summed per-stage work seconds (stages may overlap in time)."""
        return sum(timing.seconds for timing in self.timings)

    def total_seconds(self) -> float:
        """True end-to-end seconds of the run.

        ``run()`` measures the wall clock around the whole run; the
        per-stage sum is only a fallback for hand-built reports,
        because concurrent extraction stages overlap and the sum
        double-counts their shared wall time.
        """
        return self.wall_seconds or self.cumulative_stage_seconds()

    def to_json_dict(self) -> dict:
        """JSON-serializable report summary (``json.dumps``-ready).

        Includes both timing fields (non-deterministic wall clock) and
        result fields; chaos determinism checks compare the subset that
        is a pure function of config + seeds: ``seed_sizes``,
        ``attribute_counts``, ``triple_counts``, ``fused_items`` and
        ``health``.
        """
        return {
            "timings": [
                {
                    "stage": timing.stage,
                    "seconds": timing.seconds,
                    "detail": timing.detail,
                }
                for timing in self.timings
            ],
            "seed_sizes": dict(sorted(self.seed_sizes.items())),
            "attribute_counts": {
                source: dict(sorted(counts.items()))
                for source, counts in sorted(self.attribute_counts.items())
            },
            "triple_counts": dict(sorted(self.triple_counts.items())),
            "extraction_wall": dict(self.extraction_wall),
            "wall_seconds": self.wall_seconds,
            "cumulative_stage_seconds": self.cumulative_stage_seconds(),
            "fusion_wall": self.fusion_wall,
            "fusion_shards": dict(self.fusion_shards),
            "fused_items": (
                len(self.fusion_result.truths)
                if self.fusion_result is not None
                else None
            ),
            "health": self.health.to_dict(),
        }


@dataclass(slots=True)
class IncrementalReport:
    """Everything one :meth:`run_incremental` call produced.

    ``sequence`` is the engine's delta counter, offset by the sequence
    restored from an ``"incremental"`` checkpoint (so it keeps counting
    across resumed sessions).  ``primed`` marks the call that built the
    engine (the expensive path); ``resumed_from`` names the checkpoint
    stage the claim corpus came from (None when it came from an
    in-memory run).
    """

    outcome: object  # repro.incremental.engine.DeltaOutcome
    fusion_result: FusionResult
    fusion_report: TruthDiscoveryReport
    sequence: int
    primed: bool = False
    resumed_from: str | None = None
    wall_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "primed": self.primed,
            "resumed_from": self.resumed_from,
            "wall_seconds": self.wall_seconds,
            "outcome": self.outcome.to_json_dict(),
            "fusion": {
                "items": self.fusion_report.items,
                "precision": self.fusion_report.precision,
                "recall": self.fusion_report.recall,
                "f1": self.fusion_report.f1,
            },
        }


@dataclass(slots=True)
class DriftEpochRow:
    """One epoch of a drift scenario as the report records it."""

    epoch: int
    # The epoch the served KB version corresponds to after this
    # epoch's delta was published and drained (== epoch unless the
    # drain crashed and left serving on an earlier committed version).
    served_epoch: int
    delta_added: int
    delta_retracted: int
    births: int
    deaths: int
    renames: int
    value_changes: int
    freshness: FreshnessReport

    def to_json_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "served_epoch": self.served_epoch,
            "delta_added": self.delta_added,
            "delta_retracted": self.delta_retracted,
            "births": self.births,
            "deaths": self.deaths,
            "renames": self.renames,
            "value_changes": self.value_changes,
            "freshness": self.freshness.to_json_dict(),
        }


@dataclass(slots=True)
class DriftScenarioReport:
    """Everything one :meth:`run_drift` call produced.

    ``to_json_dict`` is a pure function of the drift config (timing
    lives only in ``wall_seconds``), so two same-seed runs serialize
    byte-identically — the end-to-end determinism contract the
    integration tests pin.
    """

    seed: int
    epochs: int
    base_claims: int
    final_version: int
    rows: list[DriftEpochRow] = field(default_factory=list)
    wall_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "epochs": self.epochs,
            "base_claims": self.base_claims,
            "final_version": self.final_version,
            "rows": [row.to_json_dict() for row in self.rows],
        }

    def table(self) -> str:
        headers = [
            "epoch", "served", "lag", "+claims", "-claims",
            "f1@served", "f1@current", "staleness",
        ]
        rows = [
            [
                row.epoch,
                row.served_epoch,
                row.freshness.lag_epochs,
                row.delta_added,
                row.delta_retracted,
                format_ratio(row.freshness.vs_served.f1),
                format_ratio(row.freshness.vs_current.f1),
                format_ratio(row.freshness.staleness),
            ]
            for row in self.rows
        ]
        return render_table(headers, rows, title="Drift scenario (freshness per epoch)")


@dataclass(slots=True)
class CopyingModeRow:
    """One fusion mode's outcome on a copying world."""

    mode: str
    precision: float
    recall: float
    suppressed: int
    leaked: int

    def to_json_dict(self) -> dict:
        return {
            "mode": self.mode,
            "precision": self.precision,
            "recall": self.recall,
            "suppressed": self.suppressed,
            "leaked": self.leaked,
        }


@dataclass(slots=True)
class CopyingScenarioReport:
    """Everything one :meth:`run_copying` call produced."""

    seed: int
    claims: int
    copied_errors: int
    rows: list[CopyingModeRow] = field(default_factory=list)
    wall_seconds: float = 0.0

    def mode(self, name: str) -> CopyingModeRow:
        for row in self.rows:
            if row.mode == name:
                return row
        raise KeyError(name)

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "claims": self.claims,
            "copied_errors": self.copied_errors,
            "rows": [row.to_json_dict() for row in self.rows],
        }

    def table(self) -> str:
        headers = [
            "mode", "precision", "recall", "suppressed", "leaked",
        ]
        rows = [
            [
                row.mode,
                format_ratio(row.precision),
                format_ratio(row.recall),
                row.suppressed,
                row.leaked,
            ]
            for row in self.rows
        ]
        return render_table(
            headers, rows,
            title=(
                f"Copied-error suppression "
                f"({self.copied_errors} copied errors)"
            ),
        )


# ----------------------------------------------------------------------
# Record validators for the quarantine guards: structurally broken
# records (wrong type, empty payload) are diverted, not crashed on.


def _valid_query_record(record: object) -> bool:
    return (
        isinstance(record, QueryRecord)
        and isinstance(record.text, str)
        and bool(record.text.strip())
    )


def _valid_page(record: object) -> bool:
    return (
        isinstance(record, WebPage)
        and isinstance(record.html, str)
        and bool(record.html.strip())
    )


def _valid_document(record: object) -> bool:
    return (
        isinstance(record, TextDocument)
        and isinstance(record.text, str)
        and bool(record.text.strip())
    )


# ----------------------------------------------------------------------
# Extraction stage bodies.  Module-level (hence picklable) functions of
# (world, config) so they can run inline, on a thread pool, or in a
# worker process interchangeably; each measures its own wall time.


def _kb_stage(world: GroundTruthWorld, kb_pair_config: KbPairConfig):
    """Stage 1: build the KB snapshots and extract/combine their claims."""
    started = time.perf_counter()
    freebase, dbpedia = build_kb_pair(world, kb_pair_config)
    freebase_output = KbExtractor(freebase).extract()
    dbpedia_output = KbExtractor(dbpedia).extract()
    kb_output = combine_kb_outputs([freebase_output, dbpedia_output])
    return freebase, dbpedia, kb_output, time.perf_counter() - started


def _querylog_stage(world: GroundTruthWorld, querylog_config: QueryLogConfig):
    """Stage 2a: generate the query stream (extraction needs Set_E)."""
    started = time.perf_counter()
    log = generate_query_log(world, querylog_config)
    return log, time.perf_counter() - started


def _dom_stage(
    entity_index,
    seeds: dict[str, SeedSet],
    dom_config: DomExtractorConfig,
    world: GroundTruthWorld,
    website_config: WebsiteConfig,
    fault_plan: FaultPlan | None = None,
    quarantine_capacity: int = 1000,
):
    """Stage 4: generate websites and run Algorithm 1 over them.

    Pages pass through a record guard before extraction; diverted pages
    land in a stage-local quarantine the parent merges back (the stage
    may be running in a worker process).
    """
    started = time.perf_counter()
    sites = generate_websites(world, website_config)
    local_quarantine = Quarantine(capacity=quarantine_capacity)
    page_index = 0
    for site in sites:
        page_count = len(site.pages)
        site.pages = guard_records(
            site.pages, _valid_page, local_quarantine, "dom",
            plan=fault_plan, scope="records:dom", start_index=page_index,
        )
        page_index += page_count
    extractor = DomTreeExtractor(entity_index, seeds, dom_config)
    output = extractor.extract(sites)
    return (
        output,
        extractor.mention_classes,
        local_quarantine,
        time.perf_counter() - started,
    )


def _webtext_stage(
    entity_index,
    seeds: dict[str, SeedSet],
    kb_triples,
    world: GroundTruthWorld,
    webtext_config: WebTextConfig,
    extractor_config: WebTextExtractorConfig,
    fault_plan: FaultPlan | None = None,
    quarantine_capacity: int = 1000,
):
    """Stage 5: generate Web texts and run the seed-driven extractor."""
    started = time.perf_counter()
    documents = generate_webtext(world, webtext_config)
    local_quarantine = Quarantine(capacity=quarantine_capacity)
    documents = guard_records(
        documents, _valid_document, local_quarantine, "webtext",
        plan=fault_plan, scope="records:webtext",
    )
    extractor = WebTextExtractor(
        entity_index, seeds, kb_triples, extractor_config
    )
    extractor.learn(documents)
    output = extractor.extract(documents)
    return output, local_quarantine, time.perf_counter() - started


class KnowledgeBaseConstructionPipeline:
    """Run the whole Figure-1 framework over one world."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        world: GroundTruthWorld | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.world = world or GroundTruthWorld(self.config.world)
        # Populated by run():
        self.freebase = None
        self.dbpedia = None
        self.entity_index: dict[str, object] = {}
        self.outputs: dict[str, ExtractorOutput] = {}
        self.seeds: dict[str, SeedSet] = {}
        self.claims: ClaimSet | None = None
        # The scored claim list fusion ran on (post resolution and
        # confidence scoring); run_incremental() primes its store from
        # this when available.
        self.all_triples: list | None = None
        # The KnowledgeFusion carrying the primed incremental engine
        # (None until run_incremental() first primes one; invalidated
        # by every full run()).
        self.incremental_fusion: KnowledgeFusion | None = None
        self._incremental_entity_resolution: ResolutionOutcome | None = None
        self._incremental_offset = 0
        self.quarantine = Quarantine(capacity=self.config.quarantine_capacity)
        # Observability: one registry/tracer pair per run (rebuilt at the
        # top of run()); the report of the most recent run — even one
        # that died mid-stage — stays reachable for debugging.
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        self.last_report: PipelineReport | None = None

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> PipelineReport:
        """Run the whole framework; returns the (instrumented) report.

        Every run starts from cold similarity caches (cleared here), so
        the cache metrics published into ``report.metrics`` are per-run
        values and count-type metrics stay byte-identical across
        same-seed runs.  The report is assigned to ``last_report``
        before any stage runs, so a run that dies mid-stage still
        leaves its partial timings, metrics and trace inspectable.
        """
        report = PipelineReport()
        self.last_report = report
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        # A full run recomputes the claim corpus, so any previously
        # primed incremental engine is stale.
        self.incremental_fusion = None
        self._incremental_entity_resolution = None
        self._incremental_offset = 0
        clear_similarity_caches()
        self.metrics.counter("pipeline_runs_total").inc()
        self.metrics.counter("quarantine_records_total")  # always present
        run_started = time.perf_counter()
        root = self.tracer.span("pipeline")
        try:
            self._run_phases(report, resume)
            root.end()
        except BaseException:
            root.end(failed=True)
            raise
        finally:
            report.wall_seconds = time.perf_counter() - run_started
            publish_cache_metrics(self.metrics)
            report.metrics = self.metrics.snapshot()
            report.trace = self.tracer.to_json_dict()
        return report

    def _run_phases(self, report: PipelineReport, resume: bool) -> None:
        world = self.world
        cfg = self.config
        self._validate_config()
        health = report.health
        health.min_sources = cfg.min_sources
        self.quarantine = Quarantine(capacity=cfg.quarantine_capacity)

        store = None
        if cfg.checkpoint_dir is not None:
            store = CheckpointStore(
                cfg.checkpoint_dir, config_fingerprint(cfg),
                metrics=self.metrics,
            )

        restored = (
            store.load("extraction")
            if (store is not None and resume)
            else None
        )
        if restored is not None:
            mention_classes = self._restore_extraction(report, restored)
        else:
            parallel = max(1, cfg.parallelism) > 1
            pool = None
            if parallel:
                pool_cls = (
                    ProcessPoolExecutor
                    if cfg.stage_executor == "process"
                    else ThreadPoolExecutor
                )
                pool = pool_cls(max_workers=min(2, cfg.parallelism))
            try:
                mention_classes = self._run_extraction(report, pool)
            finally:
                if pool is not None:
                    pool.shutdown()
            if store is not None and not health.degraded:
                store.save(
                    "extraction",
                    self._extraction_payload(report, mention_classes),
                )

        health.quarantined = self.quarantine.to_dict()
        health.active_sources = sorted(self.outputs)
        for source, count in sorted(self.quarantine.counts.items()):
            self.metrics.counter(
                "quarantine_diverted_total", source=source
            ).inc(count)
        self.metrics.counter("quarantine_records_total").inc(
            self.quarantine.total
        )
        self.metrics.gauge("pipeline_active_sources").set(len(self.outputs))
        if len(self.outputs) < cfg.min_sources:
            raise PipelineError(
                f"only {len(self.outputs)} extraction source(s) healthy "
                f"({health.active_sources}), below min_sources="
                f"{cfg.min_sources}; degraded: {sorted(health.degraded)}"
            )

        claims_payload = (
            store.load("claims") if (store is not None and resume) else None
        )
        if claims_payload is not None:
            all_triples = claims_payload["all_triples"]
            self.outputs = dict(claims_payload["outputs"])
            report.entity_resolution = claims_payload["entity_resolution"]
            health.resumed_stages.append("claims")
            health.active_sources = sorted(self.outputs)
        else:
            all_triples = [
                scored
                for output in self.outputs.values()
                for scored in output.triples
            ]

            # -- 5b. Joint entity linking + discovery ----------------------
            if cfg.discover_new_entities:
                with self._stage_timer(report, "entity-resolution") as timing:
                    self._check_fatal_fault("entity-resolution")
                    resolver = JointEntityResolver(
                        EntityLinker(
                            self.entity_index,
                            blocking=cfg.entity_blocking,
                        ),
                        blocking=cfg.entity_blocking,
                    )
                    all_triples, outcome = resolve_mention_triples(
                        all_triples, mention_classes, resolver
                    )
                    report.entity_resolution = outcome
                    resolver.linker.publish_blocking_metrics(self.metrics)
                    resolver.blocking_stats.publish(self.metrics)
                    timing.detail = (
                        f"{len(outcome.linked)} linked, "
                        f"{len(outcome.clusters)} new entities"
                    )

            # -- 6. Attribute resolution ----------------------------------
            if cfg.resolve_attributes:
                with self._stage_timer(report, "attribute-resolution") as timing:
                    self._check_fatal_fault("attribute-resolution")
                    all_triples = self._resolve_attributes(all_triples)
                    timing.detail = f"{len(all_triples)} claims"

            # -- 7. Confidence scoring ------------------------------------
            with self._stage_timer(report, "confidence") as timing:
                self._check_fatal_fault("confidence")
                scorer = ConfidenceScorer(cfg.confidence)
                all_triples = scorer.score_batch(all_triples)
                for output in self.outputs.values():
                    for per_class in output.attributes.values():
                        for record in per_class.values():
                            record.confidence = scorer.score_attribute(record)
                timing.detail = f"{len(all_triples)} claims"

            if store is not None and not health.degraded:
                store.save(
                    "claims",
                    {
                        "all_triples": all_triples,
                        "outputs": self.outputs,
                        "entity_resolution": report.entity_resolution,
                    },
                )

        for extractor_id, output in self.outputs.items():
            report.attribute_counts[extractor_id] = {
                class_name: output.attribute_count(class_name)
                for class_name in world.classes()
            }
            report.triple_counts[extractor_id] = len(output.triples)
            self.metrics.counter(
                "extraction_claims_total", extractor=extractor_id
            ).inc(len(output.triples))

        # -- 8. Fusion -----------------------------------------------------
        self.all_triples = all_triples
        with self._stage_timer(report, "fusion") as timing:
            self._check_fatal_fault("fusion")
            self.claims = ClaimSet.from_scored_triples(all_triples)
            functional_of = self._select_functional_oracle(self.claims)
            fusion = self._build_fusion(functional_of)
            fuse_started = time.perf_counter()
            result = fusion.fuse(self.claims)
            report.fusion_wall = time.perf_counter() - fuse_started
            self._publish_fusion_metrics(report, result, fusion)
            shard_stats = fusion.last_shard_stats
            if shard_stats is not None:
                report.fusion_shards = {
                    "components": shard_stats.components,
                    "workers": shard_stats.workers,
                    "executor": shard_stats.executor,
                    "largest_claims": shard_stats.largest_claims,
                    "component_claims": shard_stats.component_claims,
                }
                if shard_stats.attempts:
                    health.retry = {
                        "attempts": shard_stats.attempts,
                        "retries": shard_stats.retries,
                        "timed_out_tasks": shard_stats.timed_out_tasks,
                    }
            report.fusion_result = result
            timing.detail = (
                f"{len(self.claims)} claims, {len(result.truths)} items"
            )

        # -- 9. Evaluation --------------------------------------------------
        with self._stage_timer(report, "evaluation"):
            self._check_fatal_fault("evaluation")
            evaluated = self._remap_for_evaluation(
                result, report.entity_resolution
            )
            report.fusion_report = evaluate_fusion(world, evaluated)

        # -- 10. Augmentation ------------------------------------------------
        with self._stage_timer(report, "augmentation") as timing:
            self._check_fatal_fault("augmentation")
            if self.freebase is None:
                # The KB stage degraded away: there is no snapshot to
                # augment, but fusion/evaluation above still ran.
                health.mark_degraded(
                    "augmentation", "skipped: kb snapshot unavailable"
                )
                timing.detail = "skipped"
            else:
                discovered_entities = (
                    report.entity_resolution.new_entities()
                    if report.entity_resolution is not None
                    else None
                )
                report.augmentation = augment_kb(
                    self.freebase,
                    list(self.outputs.values()),
                    result,
                    self.claims,
                    class_of_subject=self._class_of_subject,
                    new_entities=discovered_entities,
                )
                timing.detail = (
                    f"{report.augmentation.new_facts} facts, "
                    f"{report.augmentation.total_new_attributes()} attributes, "
                    f"{report.augmentation.new_entities} entities"
                )

    # ------------------------------------------------------------------
    def _validate_config(self) -> None:
        cfg = self.config
        if cfg.stage_executor not in ("process", "thread"):
            raise PipelineError(
                "stage_executor must be 'process' or 'thread', "
                f"got {cfg.stage_executor!r}"
            )
        if cfg.fusion_executor not in ("process", "serial"):
            raise PipelineError(
                "fusion_executor must be 'process' or 'serial', "
                f"got {cfg.fusion_executor!r}"
            )
        if cfg.fusion_parallelism < 1:
            raise PipelineError("fusion_parallelism must be >= 1")
        if cfg.min_sources < 0:
            raise PipelineError("min_sources must be >= 0")
        if cfg.quarantine_capacity < 1:
            raise PipelineError("quarantine_capacity must be >= 1")
        if cfg.stage_timeout is not None and cfg.stage_timeout <= 0:
            raise PipelineError("stage_timeout must be positive")
        if cfg.storage_backend not in ("memory", "segment"):
            raise PipelineError(
                "storage_backend must be 'memory' or 'segment', "
                f"got {cfg.storage_backend!r}"
            )
        if cfg.storage_backend == "segment" and not cfg.storage_dir:
            raise PipelineError(
                "storage_backend='segment' requires storage_dir"
            )
        if cfg.memtable_limit < 1:
            raise PipelineError("memtable_limit must be >= 1")

    # ------------------------------------------------------------------
    # Observability helpers.

    def _stage_timer(self, report: PipelineReport, stage: str) -> "_timed":
        """A ``_timed`` wired to this run's tracer and metrics."""
        return _timed(
            report, stage, tracer=self.tracer, metrics=self.metrics
        )

    def _record_stage(
        self, report: PipelineReport, stage: str, seconds: float, detail: str
    ) -> None:
        """Book one completed extraction stage everywhere at once.

        The stage body measured ``seconds`` inside its (possibly
        worker-process) execution, so the span is back-dated rather
        than live-timed.
        """
        report.timings.append(StageTiming(stage, seconds, detail))
        self.tracer.record(stage, seconds, detail=detail)
        self.metrics.histogram(
            "pipeline_stage_seconds", stage=stage
        ).observe(seconds)
        self.metrics.counter(
            "pipeline_stage_success_total", stage=stage
        ).inc()

    def _publish_fusion_metrics(
        self, report: PipelineReport, result, fusion
    ) -> None:
        """Kernel-level fusion accounting: rounds, convergence, shards."""
        metrics = self.metrics
        metrics.counter("fusion_rounds_total").inc(result.iterations)
        metrics.counter("fusion_claims_total").inc(len(self.claims))
        metrics.counter("fusion_truth_items_total").inc(len(result.truths))
        metrics.counter("fusion_converged_runs_total")
        if result.converged_at is not None:
            metrics.counter("fusion_converged_runs_total").inc()
            metrics.gauge("fusion_converged_at_round").set(
                result.converged_at
            )
        metrics.histogram("fusion_fuse_seconds").observe(report.fusion_wall)
        shard_stats = fusion.last_shard_stats
        if shard_stats is not None:
            metrics.gauge("fusion_components").set(shard_stats.components)
            metrics.gauge("fusion_largest_component_claims").set(
                shard_stats.largest_claims
            )
            component_sizes = metrics.histogram("fusion_component_claims")
            for size in shard_stats.component_claims:
                component_sizes.observe(size)

    # ------------------------------------------------------------------
    def _check_fatal_fault(self, stage: str) -> None:
        """Fire any injected fault targeting a post-extraction stage.

        These stages are not isolated (their outputs feed everything
        downstream), so an injected crash here aborts the run — exactly
        the scenario checkpoint/resume exists for.
        """
        plan = self.config.fault_plan
        if plan is not None:
            plan.task_delay(f"stage:{stage}", 0, 0)

    def _guarded_stage(self, report: PipelineReport, stage: str, call):
        """Run one extraction stage inside an isolation boundary.

        ``call`` must return a tuple whose last element is the stage's
        measured work seconds.  On success returns that tuple with any
        injected slow-seconds folded into the timing (so deadline tests
        never actually sleep); on exception — organic, injected, or a
        :class:`StageTimeoutError` raised here when the stage exceeds
        ``stage_timeout`` — marks the stage degraded in the report's
        health section and returns None, and the pipeline continues
        with the remaining sources.
        """
        cfg = self.config
        try:
            extra = 0.0
            if cfg.fault_plan is not None:
                extra = cfg.fault_plan.task_delay(f"stage:{stage}", 0, 0)
            result = call()
            seconds = result[-1] + extra
            if cfg.stage_timeout is not None and seconds > cfg.stage_timeout:
                raise StageTimeoutError(
                    f"stage {stage} ran {seconds:.3f}s, "
                    f"over the {cfg.stage_timeout}s deadline"
                )
            return result[:-1] + (seconds,)
        except Exception as exc:  # noqa: BLE001 — the isolation boundary
            reason = f"{type(exc).__name__}: {exc}"
            report.health.mark_degraded(stage, reason)
            self.tracer.record(stage, 0.0, detail=reason, failed=True)
            self.metrics.counter(
                "pipeline_stage_failed_total", stage=stage
            ).inc()
            return None

    def _guard_input(self, records, validator, source: str):
        """Divert malformed records of one parent-side input stream."""
        return guard_records(
            records,
            validator,
            self.quarantine,
            source,
            plan=self.config.fault_plan,
            scope=f"records:{source}",
        )

    # ------------------------------------------------------------------
    def _run_extraction(self, report: PipelineReport, pool) -> dict[str, str]:
        """Stages 1-5: run the four extractors, serially or concurrently.

        Returns the DOM extractor's mention-surface → class map (used by
        joint entity resolution).  With a pool, phase A runs KB-snapshot
        extraction next to query-log generation and phase B runs the DOM
        and Web-text extractors side by side; stage timings are measured
        inside the stage bodies either way, so the report is comparable
        across modes.  Every stage runs inside :meth:`_guarded_stage`,
        so one crashing extractor degrades its source instead of killing
        the run.
        """
        world = self.world
        cfg = self.config
        plan = cfg.fault_plan

        # -- 1+2a. KB snapshots + query-log generation (phase A) ---------
        phase_span = (
            self.tracer.span("extraction-phase-a") if pool is not None
            else None
        )
        phase_started = time.perf_counter()
        if pool is not None:
            kb_future = pool.submit(_kb_stage, world, cfg.kb_pair)
            log_future = pool.submit(_querylog_stage, world, cfg.querylog)
            kb_call = kb_future.result
        else:
            log_future = None

            def kb_call():
                return _kb_stage(world, cfg.kb_pair)

        kb_output = None
        kb_result = self._guarded_stage(report, "kb-extraction", kb_call)
        if kb_result is not None:
            self.freebase, self.dbpedia, kb_output, kb_seconds = kb_result
            self.outputs["kb"] = kb_output
            self._record_stage(
                report, "kb-extraction", kb_seconds,
                f"{len(kb_output.triples)} claims",
            )

        self.entity_index = (
            self._set_e_index() if self.freebase is not None else {}
        )

        # -- 2b. Query-stream extraction (needs Set_E) --------------------
        def query_stream_call():
            if log_future is not None:
                log, log_seconds = log_future.result()
            else:
                log, log_seconds = _querylog_stage(world, cfg.querylog)
            log = self._guard_input(log, _valid_query_record, "querystream")
            started = time.perf_counter()
            extractor = QueryStreamExtractor(
                self.entity_index, cfg.querystream
            )
            query_output, query_stats = extractor.extract(log)
            return (
                query_output,
                query_stats,
                len(log),
                log_seconds + (time.perf_counter() - started),
            )

        query_output = None
        query_result = self._guarded_stage(
            report, "query-stream", query_stream_call
        )
        if query_result is not None:
            query_output, query_stats, record_count, query_seconds = (
                query_result
            )
            self.outputs["querystream"] = query_output
            report.query_stats = query_stats
            self._record_stage(
                report, "query-stream", query_seconds,
                f"{record_count} records",
            )
        if pool is not None:
            report.extraction_wall["phase-a"] = (
                time.perf_counter() - phase_started
            )
            phase_span.end()

        # -- 3. Seed sets --------------------------------------------------
        seed_outputs = [
            output for output in (kb_output, query_output) if output is not None
        ]
        self.seeds = build_seed_sets(
            seed_outputs,
            world.classes(),
            min_support=cfg.seed_min_support,
        )
        report.seed_sizes = {
            class_name: len(seed) for class_name, seed in self.seeds.items()
        }

        # -- 4+5. DOM + Web-text extraction (phase B) ----------------------
        dom_config = cfg.dom
        if cfg.discover_new_entities:
            dom_config = replace(dom_config, allow_mention_anchors=True)
        kb_triples = kb_output.triples if kb_output is not None else []
        phase_span = (
            self.tracer.span("extraction-phase-b") if pool is not None
            else None
        )
        phase_started = time.perf_counter()
        if pool is not None:
            dom_future = pool.submit(
                _dom_stage, self.entity_index, self.seeds, dom_config,
                world, cfg.websites, plan, cfg.quarantine_capacity,
            )
            text_future = pool.submit(
                _webtext_stage, self.entity_index, self.seeds,
                kb_triples, world, cfg.webtext,
                cfg.webtext_extractor, plan, cfg.quarantine_capacity,
            )
            dom_call = dom_future.result
            text_call = text_future.result
        else:

            def dom_call():
                return _dom_stage(
                    self.entity_index, self.seeds, dom_config,
                    world, cfg.websites, plan, cfg.quarantine_capacity,
                )

            def text_call():
                return _webtext_stage(
                    self.entity_index, self.seeds, kb_triples,
                    world, cfg.webtext, cfg.webtext_extractor,
                    plan, cfg.quarantine_capacity,
                )

        def dom_stage_call():
            output, mention_classes, local_quarantine, seconds = dom_call()
            self.quarantine.merge(local_quarantine)
            return output, mention_classes, seconds

        mention_classes: dict[str, str] = {}
        dom_result = self._guarded_stage(
            report, "dom-extraction", dom_stage_call
        )
        if dom_result is not None:
            dom_output, mention_classes, dom_seconds = dom_result
            self.outputs["dom"] = dom_output
            self._record_stage(
                report, "dom-extraction", dom_seconds,
                f"{len(dom_output.triples)} claims",
            )

        def text_stage_call():
            output, local_quarantine, seconds = text_call()
            self.quarantine.merge(local_quarantine)
            return output, seconds

        text_result = self._guarded_stage(
            report, "webtext-extraction", text_stage_call
        )
        if text_result is not None:
            text_output, text_seconds = text_result
            self.outputs["webtext"] = text_output
            self._record_stage(
                report, "webtext-extraction", text_seconds,
                f"{len(text_output.triples)} claims",
            )
        if pool is not None:
            report.extraction_wall["phase-b"] = (
                time.perf_counter() - phase_started
            )
            phase_span.end()
        return mention_classes

    # ------------------------------------------------------------------
    def _extraction_payload(
        self, report: PipelineReport, mention_classes: dict[str, str]
    ) -> dict:
        """Everything the extraction checkpoint must restore."""
        return {
            "freebase": self.freebase,
            "dbpedia": self.dbpedia,
            "outputs": self.outputs,
            "seeds": self.seeds,
            "entity_index": self.entity_index,
            "mention_classes": mention_classes,
            "seed_sizes": report.seed_sizes,
            "query_stats": report.query_stats,
            "quarantine": self.quarantine,
        }

    def _restore_extraction(
        self, report: PipelineReport, payload: dict
    ) -> dict[str, str]:
        """Restore extraction state from a checkpoint payload.

        Stage timings are deliberately not restored: a resumed report
        shows no extraction timings, which is the visible signal the
        stages were skipped.
        """
        self.freebase = payload["freebase"]
        self.dbpedia = payload["dbpedia"]
        self.outputs = dict(payload["outputs"])
        self.seeds = payload["seeds"]
        self.entity_index = payload["entity_index"]
        self.quarantine = payload["quarantine"]
        report.seed_sizes = payload["seed_sizes"]
        report.query_stats = payload["query_stats"]
        report.health.resumed_stages.append("extraction")
        return payload["mention_classes"]

    # ------------------------------------------------------------------
    def _set_e_index(self):
        """Set_E: representative entities of the Freebase snapshot."""
        index: dict[str, object] = {}
        for view in self.freebase.classes.values():
            for entity in view.entities:
                for form in entity.surface_forms():
                    index.setdefault(form.lower(), entity)
        return index

    def _class_of_subject(self, subject: str) -> str | None:
        parts = subject.split("/")
        head = parts[1] if parts[0] == "new" and len(parts) > 1 else parts[0]
        for class_name in self.world.classes():
            if head == class_name.lower():
                return class_name
        return None

    def _functional_oracle(self):
        functional: dict[str, bool] = {}
        for class_name in self.world.classes():
            for spec in self.world.catalogs[class_name].attributes:
                functional.setdefault(spec.name, spec.functional)
        return lambda predicate: functional.get(predicate, False)

    def _select_functional_oracle(self, claims: ClaimSet):
        """The functionality oracle per ``functionality_source``."""
        cfg = self.config
        if cfg.functionality_source == "estimated":
            from repro.fusion.functionality import (
                functional_oracle_from_claims,
            )

            return functional_oracle_from_claims(claims)
        if cfg.functionality_source == "schema":
            return self._functional_oracle()
        raise PipelineError(
            "functionality_source must be 'schema' or 'estimated', "
            f"got {cfg.functionality_source!r}"
        )

    def _build_fusion(self, functional_of) -> KnowledgeFusion:
        """The combined fusion method, configured from this pipeline."""
        cfg = self.config
        return KnowledgeFusion(
            hierarchy=self.world.hierarchy if cfg.use_hierarchy else None,
            functional_of=functional_of,
            use_source_correlations=cfg.use_source_correlations,
            use_extractor_correlations=cfg.use_extractor_correlations,
            use_confidence=cfg.use_confidence,
            tolerance=cfg.fusion_tolerance,
            parallelism=cfg.fusion_parallelism,
            fusion_executor=cfg.fusion_executor,
            retry=cfg.retry,
            fault_plan=cfg.fault_plan,
            metrics=self.metrics,
        )

    def _remap_for_evaluation(self, result, entity_resolution):
        """Resolve discovered-entity ids back to gold identities.

        Evaluation-only knowledge: the cluster names refer to real
        world entities that were absent from Set_E.
        """
        if entity_resolution is None:
            return result
        gold_index = self.world.entity_index()
        mapping: dict[str, str] = {}
        for cluster in entity_resolution.clusters:
            for surface in cluster.surfaces:
                entity = gold_index.get(surface.lower())
                if entity is not None:
                    mapping[cluster.cluster_id] = entity.entity_id
                    break
        return remap_subjects(result, mapping)

    # ------------------------------------------------------------------
    # Incremental updates.

    def _checkpoint_store(self) -> CheckpointStore | None:
        if self.config.checkpoint_dir is None:
            return None
        return CheckpointStore(
            self.config.checkpoint_dir,
            config_fingerprint(self.config),
            metrics=self.metrics,
        )

    def _build_claim_store(self):
        """A :class:`TripleStore` on the configured storage backend.

        ``"segment"`` opens (or creates) the LSM segment directory,
        wiring this run's metrics registry and fault plan through to
        the backend so ``storage_*`` metrics and the
        ``storage:flush``/``storage:compaction`` chaos scopes work
        end-to-end; delta journal writes then become memtable inserts
        that flush to segments at ``memtable_limit``.
        """
        from repro.rdf.store import TripleStore

        cfg = self.config
        if cfg.storage_backend == "segment":
            from repro.rdf.segments import SegmentBackend

            return TripleStore(
                SegmentBackend(
                    cfg.storage_dir,
                    memtable_limit=cfg.memtable_limit,
                    metrics=self.metrics,
                    fault_plan=cfg.fault_plan,
                )
            )
        return TripleStore()

    def _prime_incremental(self, resume: bool) -> str | None:
        """Build and prime the incremental engine; returns the
        checkpoint stage the claim corpus was restored from (None when
        it came from this process's last run())."""
        cfg = self.config
        all_triples = self.all_triples
        entity_resolution = (
            self.last_report.entity_resolution
            if self.last_report is not None
            else None
        )
        resumed_from = None
        if all_triples is None:
            store = self._checkpoint_store()
            if store is None or not resume:
                raise PipelineError(
                    "run_incremental needs claims: call run() first, or "
                    "pass resume=True with a checkpoint_dir holding a "
                    "claims/incremental checkpoint"
                )
            payload = store.load("incremental")
            if payload is not None:
                resumed_from = "incremental"
                self._incremental_offset = payload.get("sequence", 0)
            else:
                payload = store.load("claims")
                if payload is None:
                    raise PipelineError(
                        "resume=True but no usable claims/incremental "
                        f"checkpoint in {cfg.checkpoint_dir!r} (missing "
                        "or stale fingerprint)"
                    )
                resumed_from = "claims"
            all_triples = payload["all_triples"]
            entity_resolution = payload.get("entity_resolution")

        claims = ClaimSet.from_scored_triples(all_triples)
        functional_refresh = None
        if cfg.functionality_source == "estimated":
            from repro.fusion.functionality import (
                functional_oracle_from_claims,
            )

            # Re-derived by the engine after every delta; the initial
            # oracle is set by prime() through the same callback.
            functional_of = None
            functional_refresh = functional_oracle_from_claims
        else:
            functional_of = self._select_functional_oracle(claims)

        fusion = self._build_fusion(functional_of)
        triple_store = self._build_claim_store()
        triple_store.add_all(all_triples)
        fusion.begin_incremental(
            triple_store, functional_refresh=functional_refresh
        )
        self.incremental_fusion = fusion
        self._incremental_entity_resolution = entity_resolution
        return resumed_from

    def run_incremental(self, delta, *, resume: bool = False):
        """Apply one :class:`~repro.incremental.delta.ClaimDelta`.

        Journals the delta into the claim store and re-fuses only the
        dirty connected components (see :mod:`repro.incremental`), then
        re-evaluates the merged result against the world.  The claim
        corpus comes from, in order of preference: the engine primed by
        a previous call, this process's last :meth:`run`, or (with
        ``resume=True`` and a ``checkpoint_dir``) the ``"incremental"``
        or ``"claims"`` checkpoint — so resume and delta-apply compose:
        a crashed session picks up exactly where the last applied delta
        left the store.  Each successful call saves an ``"incremental"``
        checkpoint with the post-delta claim corpus.

        Returns an :class:`IncrementalReport`.
        """
        started = time.perf_counter()
        self.metrics.counter("pipeline_incremental_runs_total").inc()
        primed = False
        resumed_from = None
        if self.incremental_fusion is None:
            resumed_from = self._prime_incremental(resume)
            primed = True

        outcome = self.incremental_fusion.apply_delta(delta)
        engine = self.incremental_fusion.incremental
        self.all_triples = engine.store.claims()
        self.claims = engine.claims

        evaluated = self._remap_for_evaluation(
            outcome.result, self._incremental_entity_resolution
        )
        fusion_report = evaluate_fusion(self.world, evaluated)

        sequence = self._incremental_offset + outcome.sequence
        store = self._checkpoint_store()
        if store is not None:
            store.save(
                "incremental",
                {
                    "all_triples": engine.store.claims(),
                    "sequence": sequence,
                    "entity_resolution": (
                        self._incremental_entity_resolution
                    ),
                },
            )
        return IncrementalReport(
            outcome=outcome,
            fusion_result=outcome.result,
            fusion_report=fusion_report,
            sequence=sequence,
            primed=primed,
            resumed_from=resumed_from,
            wall_seconds=time.perf_counter() - started,
        )

    def serve(self, *, resume: bool = False, retry=None, log=None,
              group: str = "serving"):
        """Build a :class:`~repro.serving.server.KBServer` over this run.

        Primes the incremental engine if needed (same corpus rules as
        :meth:`run_incremental`: last ``run()``, or ``resume=True``
        with a checkpoint), then hands it to a server whose event log,
        retry policy, quarantine, metrics and fault plan come from the
        pipeline config.  Readers pin immutable versions while
        published deltas commit through the stream consumer — see
        :mod:`repro.serving`.
        """
        from repro.serving.server import KBServer
        from repro.serving.stream import EventLog

        if self.incremental_fusion is None:
            self._prime_incremental(resume)
        cfg = self.config
        return KBServer(
            self.incremental_fusion.incremental,
            log if log is not None else EventLog(
                cfg.serving_log_capacity, metrics=self.metrics
            ),
            group=group,
            retry=retry if retry is not None else cfg.retry,
            quarantine=Quarantine(capacity=cfg.quarantine_capacity),
            metrics=self.metrics,
            fault_plan=cfg.fault_plan,
        )

    # ------------------------------------------------------------------
    # Scenario runs: moving truth and copying sources.

    def run_drift(
        self, config: DriftConfig | None = None
    ) -> DriftScenarioReport:
        """Drive serving with a drifting world's epoch-delta stream.

        Builds a seeded :class:`~repro.synth.drift.DriftingWorld`,
        primes the incremental engine on its base corpus, then
        publishes each epoch's :class:`ClaimDelta` through
        :meth:`serve`'s event stream and drains it to a committed KB
        version.  Every epoch is scored with
        :func:`~repro.evalx.freshness.freshness_report` against both
        the truth of the *served* epoch and the *current* truth, so
        the report separates fusion quality from staleness.  The
        report's ``to_json_dict`` is deterministic: same config, same
        bytes.
        """
        cfg = config or self.config.drift or DriftConfig()
        started = time.perf_counter()
        world = DriftingWorld(cfg)
        self.metrics.counter("drift_runs_total").inc()
        self.metrics.counter("drift_base_claims_total").inc(len(world.base))

        # The drift corpus replaces whatever the last run() left: the
        # engine must be primed fresh on the drifting world's base.
        self.incremental_fusion = None
        self._incremental_entity_resolution = None
        self._incremental_offset = 0
        self.all_triples = list(world.base)
        server = self.serve()

        report = DriftScenarioReport(
            seed=cfg.seed,
            epochs=cfg.epochs,
            base_claims=len(world.base),
            final_version=0,
        )
        for index, epoch in enumerate(world.epochs, start=1):
            truth = epoch.truth
            self.metrics.counter("drift_epochs_total").inc()
            self.metrics.counter("drift_births_total").inc(len(truth.born))
            self.metrics.counter("drift_deaths_total").inc(len(truth.died))
            self.metrics.counter("drift_renames_total").inc(
                len(truth.renamed)
            )
            self.metrics.counter("drift_value_changes_total").inc(
                len(truth.changed)
            )
            server.publish(epoch.delta)
            server.drain()
            version = server.versions.current
            served_epoch = version.version_id
            fresh = freshness_report(
                version.result.truths,
                served_epoch=served_epoch,
                current_epoch=index,
                served_truth=world.truth_at(served_epoch),
                current_truth=world.truth_at(index),
            )
            self.metrics.gauge("drift_freshness_lag_epochs").set(
                fresh.lag_epochs
            )
            self.metrics.gauge("drift_staleness_ratio").set(fresh.staleness)
            self.metrics.histogram("drift_epoch_delta_claims").observe(
                len(epoch.delta.added) + len(epoch.delta.retracted)
            )
            report.rows.append(
                DriftEpochRow(
                    epoch=index,
                    served_epoch=served_epoch,
                    delta_added=len(epoch.delta.added),
                    delta_retracted=len(epoch.delta.retracted),
                    births=len(truth.born),
                    deaths=len(truth.died),
                    renames=len(truth.renamed),
                    value_changes=len(truth.changed),
                    freshness=fresh,
                )
            )
        report.final_version = server.versions.current.version_id
        report.wall_seconds = time.perf_counter() - started
        return report

    def run_copying(
        self, config: CopyingConfig | None = None
    ) -> CopyingScenarioReport:
        """Fuse a copying world with correlations off, then on.

        Builds a seeded :class:`~repro.synth.copying.CopyingWorld`
        (copier sources replicating a victim's claims, errors
        included) and fuses its claims twice — correlation-blind and
        correlation-aware — scoring each mode's copied-error
        suppression against the world's gold standard.  The
        correlation machinery earns its keep when the aware mode
        suppresses more copied errors than the blind one.
        """
        cfg = config or self.config.copying or CopyingConfig()
        started = time.perf_counter()
        world = generate_copying_world(cfg)
        self.metrics.counter("copying_runs_total").inc()
        self.metrics.counter("copying_claims_total").inc(len(world.claims))
        self.metrics.counter("copying_copied_errors_total").inc(
            world.total_copied_errors()
        )

        report = CopyingScenarioReport(
            seed=cfg.seed,
            claims=len(world.claims),
            copied_errors=world.total_copied_errors(),
        )
        for mode, correlated in (
            ("correlation-blind", False),
            ("correlation-aware", True),
        ):
            fusion = KnowledgeFusion(
                tolerance=0.0,
                use_source_correlations=correlated,
                use_extractor_correlations=False,
                use_confidence=False,
            )
            result = fusion.fuse(world.claims)
            suppressed, leaked = world.copied_error_outcome(result.truths)
            self.metrics.counter(
                "copying_suppressed_total", mode=mode
            ).inc(suppressed)
            self.metrics.counter(
                "copying_leaked_total", mode=mode
            ).inc(leaked)
            report.rows.append(
                CopyingModeRow(
                    mode=mode,
                    precision=world.precision_of(result.truths),
                    recall=world.recall_of(result.truths),
                    suppressed=suppressed,
                    leaked=leaked,
                )
            )
        report.wall_seconds = time.perf_counter() - started
        return report

    def run_tenants(self, config: TenantMixConfig | None = None):
        """Ingest and serve a multi-tenant mix on one shared runtime.

        Expands the mix into per-tenant workloads
        (:func:`~repro.synth.tenants.build_tenant_workload`), hosts
        one isolated serving stack per tenant behind a
        :class:`~repro.serving.tenancy.TenantManager` — per-tenant
        metrics labels on this pipeline's registry, checkpoints under
        ``checkpoint_dir/<tenant>`` when a checkpoint dir is set —
        drains the fleet fair-share, and scores every tenant against
        its own ground truth.  The report's ``to_json_dict`` is
        deterministic: same mix config, same bytes.
        """
        from repro.serving.tenancy import TenantManager

        cfg = config or self.config.tenants or TenantMixConfig()
        started = time.perf_counter()
        self.metrics.counter("tenant_runs_total").inc()
        manager = TenantManager.from_mix(
            cfg,
            metrics=self.metrics,
            capacity=self.config.serving_log_capacity,
            retry=self.config.retry,
            checkpoint_root=self.config.checkpoint_dir,
        )
        rounds = manager.drain_fair()
        if self.config.checkpoint_dir is not None:
            manager.checkpoint_all()
        report = manager.eval_rows(rounds=rounds)
        report.wall_seconds = time.perf_counter() - started
        return report

    def _resolve_attributes(self, triples):
        profiles_by_class: dict[str, dict[str, set]] = {}
        support_by_class: dict[str, dict[str, int]] = {}
        for output in self.outputs.values():
            for class_name, per_class in output.attributes.items():
                support = support_by_class.setdefault(class_name, {})
                for name, record in per_class.items():
                    support[name] = support.get(name, 0) + record.support
        profiles = build_value_profiles(triples)
        resolutions = {}
        # One shared stats object so per-class resolvers aggregate into
        # a single "attributes" blocking site.
        stats = BlockingStats("attributes")
        for class_name, support in support_by_class.items():
            class_profiles = {
                name: profile
                for name, profile in profiles.items()
                if name in support
            }
            resolutions[class_name] = AttributeResolver(
                class_name, support, class_profiles,
                blocking=self.config.entity_blocking, stats=stats,
            ).run()
        stats.publish(self.metrics)
        return apply_resolution(triples, resolutions, self._class_of_subject)


class _timed:
    """Context manager recording a stage timing into a report.

    The timing is appended whether or not the block raises: a failed
    stage still spent the time, and dropping it made degraded-run
    reports under-count wall-clock work.  Failures are marked in the
    timing detail (``failed: <ExcType>``) and, when a tracer/metrics
    pair is attached, in the span status and the
    ``pipeline_stage_failed_total`` counter.
    """

    def __init__(
        self,
        report: PipelineReport,
        stage: str,
        *,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.report = report
        self.stage = stage
        self.timing = StageTiming(stage, 0.0)
        self._tracer = tracer
        self._metrics = metrics
        self._span = None

    def __enter__(self) -> StageTiming:
        if self._tracer is not None:
            self._span = self._tracer.span(self.stage)
        self._start = time.perf_counter()
        return self.timing

    def __exit__(self, exc_type, exc, tb) -> None:
        self.timing.seconds = time.perf_counter() - self._start
        failed = exc_type is not None
        if failed:
            marker = f"failed: {exc_type.__name__}"
            self.timing.detail = (
                f"{self.timing.detail}; {marker}"
                if self.timing.detail else marker
            )
            self.report.health.mark_degraded(
                self.stage, f"{exc_type.__name__}: {exc}"
            )
        self.report.timings.append(self.timing)
        if self._span is not None:
            self._span.end(detail=self.timing.detail, failed=failed)
        if self._metrics is not None:
            self._metrics.histogram(
                "pipeline_stage_seconds", stage=self.stage
            ).observe(self.timing.seconds)
            outcome = (
                "pipeline_stage_failed_total"
                if failed else "pipeline_stage_success_total"
            )
            self._metrics.counter(outcome, stage=self.stage).inc()
