"""Core: the unified confidence criterion, KB augmentation, and the
end-to-end Figure-1 pipeline."""

from repro.core.augmentation import (
    AugmentationReport,
    augment_kb,
)
from repro.core.checkpoint import (
    CHECKPOINT_STAGES,
    CheckpointStore,
    config_fingerprint,
)
from repro.core.confidence import (
    DEFAULT_EXTRACTOR_PRIORS,
    ConfidenceConfig,
    ConfidenceScorer,
)
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    PipelineHealth,
    PipelineReport,
    StageTiming,
)
from repro.core.quarantine import Quarantine, guard_records

__all__ = [
    "AugmentationReport",
    "CHECKPOINT_STAGES",
    "CheckpointStore",
    "ConfidenceConfig",
    "ConfidenceScorer",
    "DEFAULT_EXTRACTOR_PRIORS",
    "KnowledgeBaseConstructionPipeline",
    "PipelineConfig",
    "PipelineHealth",
    "PipelineReport",
    "Quarantine",
    "StageTiming",
    "augment_kb",
    "config_fingerprint",
    "guard_records",
]
