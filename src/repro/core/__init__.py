"""Core: the unified confidence criterion, KB augmentation, and the
end-to-end Figure-1 pipeline."""

from repro.core.augmentation import (
    AugmentationReport,
    augment_kb,
)
from repro.core.confidence import (
    DEFAULT_EXTRACTOR_PRIORS,
    ConfidenceConfig,
    ConfidenceScorer,
)
from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    PipelineReport,
    StageTiming,
)

__all__ = [
    "AugmentationReport",
    "ConfidenceConfig",
    "ConfidenceScorer",
    "DEFAULT_EXTRACTOR_PRIORS",
    "KnowledgeBaseConstructionPipeline",
    "PipelineConfig",
    "PipelineReport",
    "StageTiming",
    "augment_kb",
]
