"""The unified confidence criterion (Sec. 3.1).

The paper notes that extractors rarely share a meaningful confidence
scale and proposes "a unified criterion" for assigning confidence to
every triple.  The criterion implemented here combines, per triple:

* **extractor prior** — how precise the producing extractor is in
  general (existing KBs ≫ query stream ≫ DOM ≫ free text);
* **replication support** — how many independent (source, extractor)
  claims assert the identical triple;
* **in-item agreement** — among all claims about the triple's data
  item, the share that agree with this value.

The three signals combine through a logistic link, yielding a score in
``(0, 1)`` that is comparable across extractors — which is exactly what
the downstream confidence-aware fusion needs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.extract.base import DiscoveredAttribute
from repro.fusion.base import value_key
from repro.rdf.triple import ScoredTriple

DEFAULT_EXTRACTOR_PRIORS: dict[str, float] = {
    "kb": 0.95,
    "kb-load": 0.95,
    "querystream": 0.8,
    "dom": 0.7,
    "webtext": 0.6,
}


@dataclass(slots=True)
class ConfidenceConfig:
    """Weights of the unified criterion."""

    extractor_priors: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EXTRACTOR_PRIORS)
    )
    default_prior: float = 0.5
    bias: float = -0.4
    prior_weight: float = 2.2
    support_weight: float = 0.8
    agreement_weight: float = 1.2


class ConfidenceScorer:
    """Assign unified confidence scores to scored triples."""

    def __init__(self, config: ConfidenceConfig | None = None) -> None:
        self.config = config or ConfidenceConfig()

    def score_batch(
        self, extractions: Iterable[ScoredTriple]
    ) -> list[ScoredTriple]:
        """Re-score a batch; returns new records, input order preserved."""
        batch = list(extractions)
        # Replication support per (triple identity, value-key) and claim
        # totals per item.
        replication: dict[tuple[str, str, str], set[tuple[str, str]]] = {}
        item_totals: dict[tuple[str, str], int] = {}
        for scored in batch:
            triple = scored.triple
            key = (triple.subject, triple.predicate, value_key(triple.obj.lexical))
            replication.setdefault(key, set()).add(
                (scored.provenance.source_id, scored.provenance.extractor_id)
            )
            item = triple.item
            item_totals[item] = item_totals.get(item, 0) + 1

        rescored: list[ScoredTriple] = []
        for scored in batch:
            triple = scored.triple
            key = (triple.subject, triple.predicate, value_key(triple.obj.lexical))
            support = len(replication[key])
            agreement = (
                support / item_totals[triple.item]
                if item_totals[triple.item]
                else 0.0
            )
            rescored.append(
                scored.with_confidence(self.score_one(scored, support, agreement))
            )
        return rescored

    def score_one(
        self, scored: ScoredTriple, support: int, agreement: float
    ) -> float:
        """The logistic combination for one triple."""
        cfg = self.config
        prior = cfg.extractor_priors.get(
            scored.provenance.extractor_id, cfg.default_prior
        )
        logit = (
            cfg.bias
            + cfg.prior_weight * (prior - 0.5) * 2.0
            + cfg.support_weight * math.log1p(support - 1)
            + cfg.agreement_weight * (agreement - 0.5) * 2.0
        )
        return 1.0 / (1.0 + math.exp(-logit))

    def score_attribute(self, record: DiscoveredAttribute) -> float:
        """Confidence for a discovered attribute: prior × support odds."""
        cfg = self.config
        prior = cfg.extractor_priors.get(
            record.extractor_id, cfg.default_prior
        )
        support_odds = record.support / (record.support + 3.0)
        entity_odds = record.entity_support / (record.entity_support + 2.0)
        return prior * (0.5 * support_odds + 0.5 * entity_odds)
