"""Quarantine sink for malformed extractor input records.

The framework ingests four heterogeneous, noisy source types
(Sec. 3.1); at production scale a single malformed page or query
record must not abort a whole extraction stage.  Instead of raising
mid-stage, record validation diverts bad records here, keeping

* a per-source count of diverted records,
* a few sampled examples per source (enough to debug, bounded so a
  poisoned feed cannot balloon the report), and
* a global total checked against a capacity: exceeding it raises
  :class:`~repro.errors.QuarantineOverflowError`, because losing most
  of a source silently would be worse than failing.

Stage bodies that run inside worker processes build a local quarantine
and the parent merges it back (:meth:`Quarantine.merge`), mirroring how
the MapReduce engine merges per-worker counters.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import QuarantineOverflowError
from repro.faults import CorruptedRecord, FaultPlan

__all__ = ["Quarantine", "guard_records"]


@dataclass(slots=True)
class Quarantine:
    """Bounded sink of diverted records with per-source accounting.

    Diverting with ``retain=True`` additionally keeps the record
    object itself in a per-source dead-letter hold, so a consumer can
    later list (:meth:`held_items`), inspect, and re-enqueue
    (:meth:`drain`) what was diverted — the serving layer parks
    poison deltas here.  Draining pops: each held record comes back
    exactly once.
    """

    capacity: int = 1000
    sample_limit: int = 3
    total: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    samples: dict[str, list[str]] = field(default_factory=dict)
    # source -> [(reason, record), ...] in diversion order; only
    # retain=True diversions land here (bounded by ``capacity`` like
    # everything else).
    held: dict[str, list[tuple[str, object]]] = field(default_factory=dict)

    def divert(
        self,
        source: str,
        record: object,
        reason: str = "malformed",
        *,
        retain: bool = False,
    ) -> None:
        """Record one bad record; raise when capacity would be exceeded.

        The overflow check runs *before* any mutation: a caller that
        catches :class:`QuarantineOverflowError` (stage isolation does)
        keeps a sink exactly at capacity with stable totals, and every
        later divert raises the same way instead of drifting the
        counters further past the bound.
        """
        if self.total + 1 > self.capacity:
            raise QuarantineOverflowError(
                f"quarantine overflow: capacity {self.capacity} reached "
                f"({self.total} diverted), refusing record from "
                f"{source!r}"
            )
        self.total += 1
        self.counts[source] = self.counts.get(source, 0) + 1
        bucket = self.samples.setdefault(source, [])
        if len(bucket) < self.sample_limit:
            bucket.append(f"{reason}: {repr(record)[:160]}")
        if retain:
            self.held.setdefault(source, []).append((reason, record))

    def held_items(
        self, source: str | None = None
    ) -> list[tuple[str, str, object]]:
        """Non-destructive view of retained records.

        Returns ``(source, reason, record)`` tuples in diversion order,
        optionally restricted to one source.  Inspection never consumes
        — only :meth:`drain` does.
        """
        sources = (
            [source] if source is not None else sorted(self.held)
        )
        return [
            (name, reason, record)
            for name in sources
            for reason, record in self.held.get(name, ())
        ]

    def drain(self, source: str) -> list[object]:
        """Pop every retained record of one source (exactly once).

        The per-source counts/samples stay — the quarantine still
        reports that the diversions *happened* — but the records
        themselves are handed back for re-enqueueing and a second
        drain returns nothing.
        """
        return [record for _reason, record in self.drain_entries(source)]

    def drain_entries(self, source: str) -> list[tuple[str, object]]:
        """Like :meth:`drain` but keeps the ``(reason, record)`` pairs.

        Callers that may have to :meth:`repark` a partially processed
        drain need the reasons back intact.
        """
        return self.held.pop(source, [])

    def repark(
        self, source: str, entries: list[tuple[str, object]]
    ) -> None:
        """Return drained-but-unprocessed entries to the hold.

        The inverse of :meth:`drain_entries` for the tail of a drain
        that could not complete (e.g. a re-publish shed by
        backpressure).  Entries go back *ahead of* anything diverted
        meanwhile, preserving overall diversion order.  Counts and
        totals are untouched: these records were accounted for when
        first diverted, and re-parking is not a new failure.
        """
        if not entries:
            return
        hold = self.held.setdefault(source, [])
        hold[:0] = entries

    def merge(self, other: "Quarantine") -> None:
        """Fold a stage-local quarantine into this one.

        Like :meth:`divert`, the capacity check happens before any
        mutation, so a caught overflow leaves this sink unchanged.
        """
        if self.total + other.total > self.capacity:
            raise QuarantineOverflowError(
                f"quarantine overflow: merging {other.total} diverted "
                f"records into {self.total} would exceed capacity "
                f"{self.capacity}"
            )
        self.total += other.total
        for source, count in other.counts.items():
            self.counts[source] = self.counts.get(source, 0) + count
        for source, examples in other.samples.items():
            bucket = self.samples.setdefault(source, [])
            for example in examples:
                if len(bucket) >= self.sample_limit:
                    break
                bucket.append(example)
        for source, entries in other.held.items():
            self.held.setdefault(source, []).extend(entries)

    def to_dict(self) -> dict:
        """JSON-ready snapshot (sorted for deterministic serialization)."""
        snapshot = {
            "total": self.total,
            "counts": dict(sorted(self.counts.items())),
            "samples": {
                source: list(examples)
                for source, examples in sorted(self.samples.items())
            },
        }
        if self.held:
            # Only when a dead-letter hold is in use, so batch-pipeline
            # report bytes are unchanged for runs that never retain.
            snapshot["held"] = {
                source: len(entries)
                for source, entries in sorted(self.held.items())
            }
        return snapshot


def guard_records(
    records: Iterable[object],
    validator: Callable[[object], bool],
    quarantine: Quarantine,
    source: str,
    *,
    plan: FaultPlan | None = None,
    scope: str | None = None,
    start_index: int = 0,
) -> list[object]:
    """Validate an input stream, diverting bad records to the quarantine.

    When a fault plan is given, each record first passes through its
    corruption hook (``scope``/``start_index`` address records the way
    the plan does); a :class:`~repro.faults.CorruptedRecord` always
    fails validation and is diverted with reason ``injected-corruption``
    so chaos reports distinguish injected damage from organic noise.
    """
    clean: list[object] = []
    for offset, record in enumerate(records):
        if plan is not None and scope is not None:
            record = plan.corrupt_record(scope, start_index + offset, record)
        if isinstance(record, CorruptedRecord):
            quarantine.divert(source, record, reason="injected-corruption")
        elif validator(record):
            clean.append(record)
        else:
            quarantine.divert(source, record)
    return clean
