"""Checkpoint/resume support for the end-to-end pipeline.

A long pipeline run that dies in fusion should not have to redo
extraction: stage outputs are spilled to a checkpoint directory and
``KnowledgeBaseConstructionPipeline.run(resume=True)`` restores them
instead of recomputing.  Two rules keep resume safe:

* **Fingerprinted** — every checkpoint embeds a fingerprint hashed
  from the *data-determining* config fields (world/generator/extractor
  configs, seeds, toggles that change what gets extracted).  A
  checkpoint whose fingerprint does not match the current config is
  silently treated as absent — stale state is rejected, never merged.
  Execution knobs (parallelism, executors, retry policy, fault plan,
  the checkpoint directory itself) are deliberately excluded: they
  change *how* a run executes, not *what* it computes, so a run
  interrupted by an injected fault can resume without one.
* **Atomic** — payloads are pickled to a temp file and ``os.replace``d
  into place, so a crash mid-write leaves either the old checkpoint or
  none, never a truncated one (unreadable files are also treated as
  absent).

Checkpointed stages (in pipeline order):

* ``"extraction"`` — everything stages 1–5 produced: snapshots,
  extractor outputs, seed sets, Set_E, mention classes, plus the
  report fragments (timings, health) those stages generated;
* ``"claims"`` — the scored claim list after entity/attribute
  resolution and confidence scoring.

Fusion and later stages always rerun: they are comparatively cheap and
depend on fusion toggles outside the fingerprint.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

__all__ = ["CHECKPOINT_STAGES", "CheckpointStore", "config_fingerprint"]

CHECKPOINT_STAGES = ("extraction", "claims")

# PipelineConfig fields that determine the *data* a run produces.
_FINGERPRINT_FIELDS = (
    "world",
    "kb_pair",
    "querylog",
    "querystream",
    "websites",
    "webtext",
    "dom",
    "webtext_extractor",
    "confidence",
    "seed_min_support",
    "discover_new_entities",
    "functionality_source",
    "resolve_attributes",
)


def config_fingerprint(config: object) -> str:
    """Hash the data-determining fields of a pipeline config.

    Accepts any object exposing the fingerprint fields (dataclass
    ``repr``s are deterministic for identically-constructed configs),
    so changing a seed, a generator knob or an extraction toggle yields
    a different fingerprint and invalidates existing checkpoints.
    """
    parts = [
        f"{name}={getattr(config, name)!r}" for name in _FINGERPRINT_FIELDS
    ]
    return hashlib.sha256("\x1e".join(parts).encode()).hexdigest()


class CheckpointStore:
    """Pickle-per-stage checkpoint directory with fingerprint checks."""

    def __init__(self, directory: str | os.PathLike, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint

    def path(self, stage: str) -> Path:
        return self.directory / f"{stage}.ckpt"

    def save(self, stage: str, payload: object) -> Path:
        """Atomically write one stage's checkpoint."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {"fingerprint": self.fingerprint, "stage": stage,
             "payload": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        target = self.path(stage)
        temp = target.with_name(target.name + ".tmp")
        temp.write_bytes(blob)
        os.replace(temp, target)
        return target

    def load(self, stage: str):
        """Return the stage payload, or None if missing/stale/unreadable."""
        target = self.path(stage)
        if not target.exists():
            return None
        try:
            envelope = pickle.loads(target.read_bytes())
        except Exception:
            return None  # truncated or foreign file: treat as absent
        if not isinstance(envelope, dict):
            return None
        if envelope.get("fingerprint") != self.fingerprint:
            return None  # stale: produced by a different config/seed
        return envelope.get("payload")

    def clear(self) -> int:
        """Delete every checkpoint file; returns how many were removed."""
        removed = 0
        for stage in CHECKPOINT_STAGES:
            target = self.path(stage)
            if target.exists():
                target.unlink()
                removed += 1
        return removed
