"""Checkpoint/resume support for the end-to-end pipeline.

A long pipeline run that dies in fusion should not have to redo
extraction: stage outputs are spilled to a checkpoint directory and
``KnowledgeBaseConstructionPipeline.run(resume=True)`` restores them
instead of recomputing.  Two rules keep resume safe:

* **Fingerprinted** — every checkpoint embeds a fingerprint hashed
  from the *data-determining* config fields (world/generator/extractor
  configs, seeds, toggles that change what gets extracted).  A
  checkpoint whose fingerprint does not match the current config is
  silently treated as absent — stale state is rejected, never merged.
  Execution knobs (parallelism, executors, retry policy, fault plan,
  the checkpoint directory itself) are deliberately excluded: they
  change *how* a run executes, not *what* it computes, so a run
  interrupted by an injected fault can resume without one.
* **Atomic** — payloads are pickled to a temp file and ``os.replace``d
  into place, so a crash mid-write leaves either the old checkpoint or
  none, never a truncated one (unreadable files are also treated as
  absent).

Checkpointed stages (in pipeline order):

* ``"extraction"`` — everything stages 1–5 produced: snapshots,
  extractor outputs, seed sets, Set_E, mention classes, plus the
  report fragments (timings, health) those stages generated;
* ``"claims"`` — the scored claim list after entity/attribute
  resolution and confidence scoring;
* ``"incremental"`` — the post-delta claim corpus and delta sequence
  written by ``run_incremental()``, so resume and delta-apply compose
  (a resumed session primes its incremental engine from the last
  applied delta, not from the original claims).

Fusion and later stages always rerun: they are comparatively cheap and
depend on fusion toggles outside the fingerprint.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import time
from pathlib import Path

__all__ = ["CHECKPOINT_STAGES", "CheckpointStore", "config_fingerprint"]

CHECKPOINT_STAGES = ("extraction", "claims", "incremental")

# A temp file younger than this is assumed to belong to a live writer
# (another process mid-``save``); the save-path sweep leaves it alone.
_STALE_TEMP_SECONDS = 60.0

# Module-level so two stores in one process can never mint the same
# ``<stage>.ckpt.<pid>.<n>.tmp`` name.
_TEMP_SERIAL = itertools.count()

# PipelineConfig fields that determine the *data* a run produces.
_FINGERPRINT_FIELDS = (
    "world",
    "kb_pair",
    "querylog",
    "querystream",
    "websites",
    "webtext",
    "dom",
    "webtext_extractor",
    "confidence",
    "seed_min_support",
    "discover_new_entities",
    "functionality_source",
    "resolve_attributes",
    "entity_blocking",
    # The storage backend does not change fused *verdicts* (that
    # equivalence is property-tested), but an "incremental" checkpoint
    # resumed under a different backend would silently detach the
    # checkpointed delta sequence from the segment directory's on-disk
    # lineage — so backend identity participates in the fingerprint.
    "storage_backend",
)


def config_fingerprint(config: object) -> str:
    """Hash the data-determining fields of a pipeline config.

    Accepts any object exposing the fingerprint fields (dataclass
    ``repr``s are deterministic for identically-constructed configs),
    so changing a seed, a generator knob or an extraction toggle yields
    a different fingerprint and invalidates existing checkpoints.
    """
    parts = [
        f"{name}={getattr(config, name)!r}" for name in _FINGERPRINT_FIELDS
    ]
    return hashlib.sha256("\x1e".join(parts).encode()).hexdigest()


class CheckpointStore:
    """Pickle-per-stage checkpoint directory with fingerprint checks.

    Temp-file hygiene: a process dying between ``write_bytes`` and
    ``os.replace`` orphans its temp file, so (a) temp names embed the
    writing process's pid plus a module-wide serial — concurrent runs
    (or two stores in one process) can never clobber each other's
    in-flight temp file — and (b) both :meth:`save` and :meth:`clear`
    sweep ``*.tmp`` siblings left by earlier crashes.  Sweeps only
    treat *this process's own* temps (pid embedded in the name) as
    fair game unconditionally; anything else — another pid's, the
    legacy pid-less naming — is deleted only once it looks abandoned
    (older than :data:`_STALE_TEMP_SECONDS`), because when tenants
    share one checkpoint root a sibling store may be mid-``save`` and
    deleting its in-flight temp out from under its ``os.replace``
    loses that checkpoint.  Both sweeps are best-effort: a
    concurrently-vanishing file is not an error.

    ``metrics`` (optional) is a :class:`repro.obs.MetricsRegistry`;
    when set, the store counts ``checkpoint_saves_total`` /
    ``checkpoint_loads_total`` / ``checkpoint_stale_total`` /
    ``checkpoint_misses_total`` (per stage) and
    ``checkpoint_temps_swept_total``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fingerprint: str,
        *,
        metrics=None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.metrics = metrics

    def path(self, stage: str) -> Path:
        return self.directory / f"{stage}.ckpt"

    def _temp_path(self, stage: str) -> Path:
        """A temp name unique across stores and processes."""
        serial = next(_TEMP_SERIAL)
        return self.directory / (
            f"{stage}.ckpt.{os.getpid()}.{serial}.tmp"
        )

    def _count(self, name: str, stage: str | None = None) -> None:
        if self.metrics is not None:
            if stage is None:
                self.metrics.counter(name).inc()
            else:
                self.metrics.counter(name, stage=stage).inc()

    def sweep_temp_files(
        self,
        stage: str | None = None,
        *,
        max_age: float | None = None,
    ) -> int:
        """Remove orphaned ``*.tmp`` files; returns how many went away.

        With ``stage`` set only that stage's temps are swept (the
        ``save`` path); without it every checkpoint temp in the
        directory is (the ``clear`` path).  With ``max_age`` set, temps
        modified within the last ``max_age`` seconds are skipped — they
        may belong to a live concurrent writer.  Without ``max_age``
        only temps this process wrote (its pid in the name) go
        unconditionally; foreign temps — another pid's, or the legacy
        pid-less ``<stage>.ckpt.tmp`` naming — still get the
        :data:`_STALE_TEMP_SECONDS` age gate, since a store sharing
        the directory may be mid-``save``.
        """
        pattern = f"{stage}.ckpt*.tmp" if stage else "*.ckpt*.tmp"
        own_marker = f".ckpt.{os.getpid()}."
        removed = 0
        for orphan in self.directory.glob(pattern):
            try:
                age_gate = max_age
                if age_gate is None and own_marker not in orphan.name:
                    age_gate = _STALE_TEMP_SECONDS
                if age_gate is not None:
                    age = time.time() - orphan.stat().st_mtime
                    if age < age_gate:
                        continue  # possibly a live writer's temp
                orphan.unlink()
                removed += 1
            except OSError:
                pass  # already gone or held elsewhere: not our orphan
        if removed and self.metrics is not None:
            self.metrics.counter("checkpoint_temps_swept_total").inc(removed)
        return removed

    def save(self, stage: str, payload: object) -> Path:
        """Atomically write one stage's checkpoint."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sweep_temp_files(stage, max_age=_STALE_TEMP_SECONDS)
        blob = pickle.dumps(
            {"fingerprint": self.fingerprint, "stage": stage,
             "payload": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        target = self.path(stage)
        temp = self._temp_path(stage)
        temp.write_bytes(blob)
        os.replace(temp, target)
        self._count("checkpoint_saves_total", stage)
        return target

    def load(self, stage: str):
        """Return the stage payload, or None if missing/stale/unreadable."""
        target = self.path(stage)
        if not target.exists():
            self._count("checkpoint_misses_total", stage)
            return None
        try:
            envelope = pickle.loads(target.read_bytes())
        except Exception:
            self._count("checkpoint_misses_total", stage)
            return None  # truncated or foreign file: treat as absent
        if not isinstance(envelope, dict):
            self._count("checkpoint_misses_total", stage)
            return None
        if envelope.get("fingerprint") != self.fingerprint:
            self._count("checkpoint_stale_total", stage)
            return None  # stale: produced by a different config/seed
        self._count("checkpoint_loads_total", stage)
        return envelope.get("payload")

    def clear(self) -> int:
        """Delete every checkpoint (and orphaned temp) file.

        Returns how many files were removed, temps included.
        """
        removed = 0
        for stage in CHECKPOINT_STAGES:
            target = self.path(stage)
            if target.exists():
                target.unlink()
                removed += 1
        removed += self.sweep_temp_files()
        return removed
