"""KB augmentation: attach fusion results back to Freebase.

The framework's final step feeds fused knowledge into Freebase
(Figure 1): newly discovered attributes enrich the class schemas, and
fused truths that the KB does not yet hold are added as new facts with
``fusion`` provenance and their fusion belief as confidence.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.extract.base import ExtractorOutput
from repro.fusion.base import ClaimSet, FusionResult, value_key
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.kb_snapshots import KbSnapshot, render_name

AUGMENTATION_EXTRACTOR = "fusion"


@dataclass(slots=True)
class AugmentationReport:
    """What augmentation changed in the target KB."""

    new_attributes: dict[str, int] = field(default_factory=dict)  # class -> count
    new_facts: int = 0
    confirmed_facts: int = 0  # fused truths the KB already held
    new_entities: int = 0

    def total_new_attributes(self) -> int:
        return sum(self.new_attributes.values())


def augment_kb(
    snapshot: KbSnapshot,
    discovered: Iterable[ExtractorOutput],
    fusion_result: FusionResult,
    claims: ClaimSet,
    *,
    class_of_subject,
    min_attribute_confidence: float = 0.0,
    new_entities: Iterable | None = None,
) -> AugmentationReport:
    """Augment a KB snapshot in place.

    Parameters
    ----------
    snapshot:
        The target KB (the Freebase snapshot in the paper's design).
    discovered:
        Extractor outputs carrying discovered attributes.
    fusion_result / claims:
        Fused truths and the claims they came from (claims supply a
        representative lexical form per value key).
    class_of_subject:
        Subject id → class name (or None).
    new_entities:
        Optional discovered :class:`~repro.rdf.ontology.Entity` records
        (from joint entity discovery) to register under their classes.
    """
    report = AugmentationReport()

    # 0. Entity enrichment: register discovered entities.
    for entity in new_entities or ():
        view = snapshot.classes.get(entity.class_name)
        if view is None:
            continue
        known_ids = {existing.entity_id for existing in view.entities}
        if entity.entity_id in known_ids:
            continue
        view.entities = tuple(view.entities) + (entity,)
        report.new_entities += 1

    # 1. Schema enrichment: new attribute names per class.
    for class_name, view in snapshot.classes.items():
        known = {
            name for name in view.schema_attributes + view.instance_attributes
        }
        known_canonical = set(known)
        added: list[str] = []
        for output in discovered:
            for name, record in output.attributes.get(class_name, {}).items():
                if record.confidence < min_attribute_confidence:
                    continue
                rendered = render_name(name, class_name, snapshot.naming)
                if rendered in known_canonical or name in known_canonical:
                    continue
                known_canonical.add(rendered)
                added.append(rendered)
        if added:
            view.instance_attributes = tuple(view.instance_attributes) + tuple(
                sorted(added)
            )
            report.new_attributes[class_name] = len(added)

    # 2. Fact attachment: fused truths not yet in the KB.
    lexical_of: dict[tuple[tuple[str, str], str], str] = {}
    for claim in claims:
        lexical_of.setdefault((claim.item, claim.value), claim.lexical)
    for item, truths in fusion_result.truths.items():
        subject, predicate = item
        class_name = class_of_subject(subject)
        if class_name is None or class_name not in snapshot.classes:
            continue
        rendered = render_name(predicate, class_name, snapshot.naming)
        existing = {
            value_key(value.lexical)
            for value in snapshot.store.objects(subject, rendered)
        }
        for truth in truths:
            if truth in existing:
                report.confirmed_facts += 1
                continue
            lexical = lexical_of.get((item, truth), truth)
            snapshot.store.add(
                ScoredTriple(
                    Triple(subject, rendered, Value(lexical)),
                    Provenance(
                        source_id=snapshot.kb_id,
                        extractor_id=AUGMENTATION_EXTRACTOR,
                    ),
                    confidence=min(
                        1.0, max(0.0, fusion_result.belief_of(item, truth))
                    ),
                )
            )
            report.new_facts += 1
    return report
