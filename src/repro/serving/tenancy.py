"""Multi-tenant serving: N isolated stacks behind one runtime.

The paper's system is shared infrastructure — "millions of users"
means many independent knowledge worlds ingested and served by one
operator (ROADMAP item 4).  The tenancy model here is *share the
runtime, share nothing else*:

* **Per-tenant stack** — every tenant owns a full
  ``engine → EventLog → KBServer → VersionedKB`` chain
  (:class:`TenantRuntime`).  No log, quarantine, fence, or version
  object is shared, so there is no cross-tenant state to corrupt.
* **Per-tenant metrics** — each stack writes through a
  :meth:`~repro.obs.metrics.MetricsRegistry.labeled` view, stamping
  ``tenant=<name>`` on every ``stream_*`` / ``serving_*`` series in
  the one shared registry
  (:func:`repro.obs.schema.validate_tenant_metrics` checks coverage).
* **Per-tenant durable state** — checkpoints live under
  ``<root>/<tenant>/``; the pid-scoped temp sweep in
  :mod:`repro.core.checkpoint` keeps even a *shared* directory safe,
  the per-tenant subdirectory keeps it tidy.
* **Fair-share drain** — :meth:`TenantManager.drain_fair` gives every
  live tenant the same per-round publish/step budget, in stable name
  order.  A tenant that sheds load (backpressure) or throws
  (injected crash, poison storm) spends *its own* round doing so;
  its neighbors' budgets are untouched.
* **Failure isolation** — a fault crossing :meth:`TenantRuntime.pump`
  is recorded on that tenant and the loop moves on (crash-restart
  semantics: at-least-once redelivery plus the dedup fence make the
  retried step safe).  A tenant that faults ``fault_limit`` times
  without progressing is halted — a poison storm degrades one
  tenant, never the fleet.

The isolation contract this buys (chaos-tested): a tenant's committed
versions in a mix — even a mix where a *neighbor* is being crashed
and poisoned — are byte-identical to the versions of its solo run,
because every input to its stack is tenant-local and deterministic.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checkpoint import CheckpointStore
from repro.core.quarantine import Quarantine
from repro.errors import BackpressureError, ServingError
from repro.evalx.freshness import freshness_report, truth_metrics
from repro.evalx.tables import format_ratio, render_table
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.mapreduce.engine import RetryPolicy
from repro.rdf.store import TripleStore
from repro.serving.server import KBServer, STREAM_SOURCE
from repro.serving.stream import EventLog
from repro.synth.tenants import (
    TenantMixConfig,
    TenantSpec,
    TenantWorkload,
    build_tenant_workload,
)

__all__ = [
    "TenantEvalRow",
    "TenantManager",
    "TenantMixReport",
    "TenantRuntime",
    "tenant_fingerprint",
]


def tenant_fingerprint(spec: TenantSpec) -> str:
    """Checkpoint fingerprint of one tenant's world.

    Dataclass ``repr`` covers every value field of the spec, so any
    change to the tenant's generator parameters invalidates its
    checkpoints — the same rule
    :func:`repro.core.checkpoint.config_fingerprint` applies to
    pipeline configs.
    """
    return hashlib.sha256(repr(spec).encode()).hexdigest()


class TenantRuntime:
    """One tenant's private serving stack plus its drain cursor.

    Everything the stack touches is tenant-local: the engine and its
    store are primed on the tenant's own base corpus, the event log
    and quarantine are fresh, and ``metrics`` is expected to be a
    tenant-labeled view (the manager passes
    ``registry.labeled(tenant=name)``).  ``fault_plan`` is the
    tenant's own chaos plan — fault state (burned attempts) is as
    private as everything else.
    """

    def __init__(
        self,
        workload: TenantWorkload,
        *,
        metrics=None,
        capacity: int = 1024,
        retry: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_dir: str | Path | None = None,
        max_iterations: int = 8,
    ) -> None:
        self.workload = workload
        self.name = workload.spec.name
        self.metrics = metrics
        store = TripleStore()
        store.add_all(workload.base)
        fusion = KnowledgeFusion(
            tolerance=0.0,
            max_iterations=max_iterations,
            metrics=metrics,
            fault_plan=fault_plan,
        )
        engine = fusion.begin_incremental(store)
        self.server = KBServer(
            engine,
            EventLog(capacity, metrics=metrics),
            retry=retry if retry is not None else RetryPolicy(),
            quarantine=Quarantine(),
            metrics=metrics,
            fault_plan=fault_plan,
        )
        self.pending: list = list(workload.deltas)
        self._next_publish = 0
        self.deferred_publishes = 0
        self.fault_count = 0
        self.last_fault: str | None = None
        self.halted: str | None = None
        self.checkpoints: CheckpointStore | None = None
        if checkpoint_dir is not None:
            self.checkpoints = CheckpointStore(
                checkpoint_dir,
                tenant_fingerprint(workload.spec),
                metrics=metrics,
            )

    # ------------------------------------------------------------------
    @property
    def published(self) -> int:
        """Deltas published so far (of ``len(pending)`` total)."""
        return self._next_publish

    @property
    def finished(self) -> bool:
        """Nothing left to publish and the log is fully consumed."""
        return (
            self._next_publish >= len(self.pending)
            and self.server.log.lag(self.server.group) == 0
        )

    def pump(self, steps: int = 2) -> bool:
        """One fair-share turn: publish one delta, consume ``steps``.

        Returns whether any progress happened (a publish or a
        consumed event).  A publish shed by backpressure is deferred
        — counted, not lost; the consume below relieves the backlog
        and the next turn retries.  Exceptions (injected crashes
        escaping :meth:`KBServer.step`) propagate to the caller's
        isolation boundary; the stack is consistent at every such
        point by the serving crash contract.
        """
        progress = False
        if self._next_publish < len(self.pending):
            try:
                self.server.publish(self.pending[self._next_publish])
                self._next_publish += 1
                progress = True
            except BackpressureError:
                self.deferred_publishes += 1
                self._count("tenant_publish_deferred_total")
        for _ in range(steps):
            if self.server.step() is None:
                break
            progress = True
        return progress

    def checkpoint(self) -> Path | None:
        """Persist this tenant's serving position under its directory.

        The payload is the durable serving cursor (committed version,
        offset, engine sequence) — enough for an operator to audit
        where each tenant stopped, and shaped like every other stage
        checkpoint so the shared-root hygiene rules apply.
        """
        if self.checkpoints is None:
            return None
        version = self.server.versions.current
        return self.checkpoints.save(
            "incremental",
            {
                "tenant": self.name,
                "version_id": version.version_id,
                "offset": version.offset,
                "sequence": version.sequence,
                "fused_items": len(version.result.truths),
            },
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()


@dataclass(slots=True)
class TenantEvalRow:
    """One tenant's post-drain evaluation."""

    name: str
    kind: str
    seed: int
    base_claims: int
    deltas: int
    published: int
    applied_events: int
    version_id: int
    poisoned: int
    quarantined_held: int
    deferred_publishes: int
    halted: str | None
    precision: float
    recall: float
    f1: float
    # Drift tenants only.
    freshness_lag: int | None = None
    staleness: float | None = None
    # Copying tenants only.
    suppressed: int | None = None
    leaked: int | None = None

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "seed": self.seed,
            "base_claims": self.base_claims,
            "deltas": self.deltas,
            "published": self.published,
            "applied_events": self.applied_events,
            "version_id": self.version_id,
            "poisoned": self.poisoned,
            "quarantined_held": self.quarantined_held,
            "deferred_publishes": self.deferred_publishes,
            "halted": self.halted,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "freshness_lag": self.freshness_lag,
            "staleness": self.staleness,
            "suppressed": self.suppressed,
            "leaked": self.leaked,
        }


@dataclass(slots=True)
class TenantMixReport:
    """Everything one multi-tenant drain produced.

    ``to_json_dict`` is a pure function of the mix config (timing
    lives only in ``wall_seconds``), the same determinism contract
    every other scenario report honors.
    """

    tenants: int
    rounds: int
    rows: list[TenantEvalRow] = field(default_factory=list)
    wall_seconds: float = 0.0

    def row(self, name: str) -> TenantEvalRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def to_json_dict(self) -> dict:
        return {
            "tenants": self.tenants,
            "rounds": self.rounds,
            "rows": [row.to_json_dict() for row in self.rows],
        }

    def table(self) -> str:
        headers = [
            "tenant", "kind", "claims", "deltas", "version", "f1",
            "lag", "supp", "leak", "poison", "held",
        ]
        rows = [
            [
                row.name,
                row.kind,
                row.base_claims,
                f"{row.published}/{row.deltas}",
                row.version_id,
                format_ratio(row.f1),
                "-" if row.freshness_lag is None else row.freshness_lag,
                "-" if row.suppressed is None else row.suppressed,
                "-" if row.leaked is None else row.leaked,
                row.poisoned,
                row.quarantined_held,
            ]
            for row in self.rows
        ]
        return render_table(
            headers, rows,
            title=f"Tenant mix ({self.tenants} tenants, "
                  f"{self.rounds} rounds)",
        )


class TenantManager:
    """N isolated tenant stacks drained by one fair-share loop."""

    def __init__(
        self,
        workloads: list[TenantWorkload],
        *,
        metrics=None,
        capacity: int = 1024,
        retry: RetryPolicy | None = None,
        fault_plans: dict | None = None,
        checkpoint_root: str | Path | None = None,
        fault_limit: int = 32,
    ) -> None:
        if not workloads:
            raise ServingError("a tenant manager needs at least one tenant")
        self.metrics = metrics
        self.fault_limit = fault_limit
        self.tenants: dict[str, TenantRuntime] = {}
        for workload in workloads:
            name = workload.spec.name
            if name in self.tenants:
                raise ServingError(f"duplicate tenant name {name!r}")
            self.tenants[name] = TenantRuntime(
                workload,
                metrics=(
                    metrics.labeled(tenant=name)
                    if metrics is not None
                    else None
                ),
                capacity=capacity,
                retry=retry,
                fault_plan=(fault_plans or {}).get(name),
                checkpoint_dir=(
                    Path(checkpoint_root) / name
                    if checkpoint_root is not None
                    else None
                ),
            )
        if metrics is not None:
            metrics.gauge("tenant_count").set(len(self.tenants))

    @classmethod
    def from_mix(
        cls, mix: TenantMixConfig, **kwargs
    ) -> "TenantManager":
        """Expand a mix config into workloads and host them."""
        return cls(
            [build_tenant_workload(spec) for spec in mix.specs()],
            **kwargs,
        )

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self.tenants)

    def tenant(self, name: str) -> TenantRuntime:
        runtime = self.tenants.get(name)
        if runtime is None:
            raise ServingError(f"unknown tenant {name!r}")
        return runtime

    def decommission(self, name: str) -> TenantRuntime:
        """Remove a tenant from the drain loop (its stack survives).

        The runtime is returned so a caller can still read its final
        versions; it simply stops receiving fair-share turns.  With
        per-tenant logs nothing else needs releasing — contrast
        :meth:`EventLog.unregister`, which exists for the
        shared-log topology.
        """
        runtime = self.tenant(name)
        del self.tenants[name]
        if self.metrics is not None:
            self.metrics.gauge("tenant_count").set(len(self.tenants))
        return runtime

    def drain_fair(
        self,
        *,
        steps_per_round: int = 2,
        max_rounds: int | None = None,
    ) -> int:
        """Round-robin every live tenant to completion; returns rounds.

        Each round walks tenants in stable name order, giving each one
        :meth:`TenantRuntime.pump` turn (one publish + up to
        ``steps_per_round`` consumed events).  A tenant that throws is
        caught *at its own boundary*: the fault is recorded on that
        tenant, everyone else's round proceeds.  Repeated faulting
        without progress (``fault_limit``) halts just that tenant.
        The loop ends when every tenant is finished or halted (or
        ``max_rounds`` is hit — a backstop for pathological plans).
        """
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            live = [
                name
                for name in self.names()
                if self.tenants[name].halted is None
                and not self.tenants[name].finished
            ]
            if not live:
                break
            rounds += 1
            for name in live:
                runtime = self.tenants[name]
                try:
                    progressed = runtime.pump(steps_per_round)
                except Exception as exc:  # noqa: BLE001 — tenant boundary
                    runtime.fault_count += 1
                    runtime.last_fault = f"{type(exc).__name__}: {exc}"
                    if runtime.metrics is not None:
                        runtime.metrics.counter(
                            "tenant_faults_total"
                        ).inc()
                    if runtime.fault_count >= self.fault_limit:
                        runtime.halted = (
                            f"fault limit {self.fault_limit} reached; "
                            f"last: {runtime.last_fault}"
                        )
                    continue
                if progressed:
                    runtime.fault_count = 0
        if self.metrics is not None:
            self.metrics.counter("tenant_rounds_total").inc(rounds)
        return rounds

    def checkpoint_all(self) -> dict[str, Path]:
        """Checkpoint every tenant under its own subdirectory."""
        return {
            name: path
            for name in self.names()
            if (path := self.tenants[name].checkpoint()) is not None
        }

    def statuses(self) -> dict:
        """Per-tenant :class:`~repro.serving.server.ServingStatus`."""
        return {
            name: self.tenants[name].server.status()
            for name in self.names()
        }

    # ------------------------------------------------------------------
    def eval_rows(self, *, rounds: int = 0) -> TenantMixReport:
        """Score every tenant's served state against its own truth."""
        report = TenantMixReport(tenants=len(self.tenants), rounds=rounds)
        for name in self.names():
            report.rows.append(self._eval_one(self.tenants[name]))
        return report

    def _eval_one(self, runtime: TenantRuntime) -> TenantEvalRow:
        workload = runtime.workload
        spec = workload.spec
        server = runtime.server
        version = server.versions.current
        decided = version.result.truths
        quality = truth_metrics(decided, workload.truth)
        row = TenantEvalRow(
            name=runtime.name,
            kind=spec.kind,
            seed=spec.seed,
            base_claims=len(workload.base),
            deltas=len(workload.deltas),
            published=runtime.published,
            applied_events=server.status().applied_events,
            version_id=version.version_id,
            poisoned=server.status().poisoned,
            quarantined_held=len(
                server.quarantine.held.get(STREAM_SOURCE, ())
            ),
            deferred_publishes=runtime.deferred_publishes,
            halted=runtime.halted,
            precision=quality.precision,
            recall=quality.recall,
            f1=quality.f1,
        )
        if workload.drift_world is not None:
            world = workload.drift_world
            served_epoch = min(version.version_id, world.current_epoch)
            fresh = freshness_report(
                decided,
                served_epoch=served_epoch,
                current_epoch=world.current_epoch,
                served_truth=world.truth_at(served_epoch),
                current_truth=world.truth_at(world.current_epoch),
            )
            row.freshness_lag = fresh.lag_epochs
            row.staleness = fresh.staleness
        if workload.copying_world is not None:
            suppressed, leaked = (
                workload.copying_world.copied_error_outcome(decided)
            )
            row.suppressed = suppressed
            row.leaked = leaked
        return row
