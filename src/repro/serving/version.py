"""Versioned KB handle: snapshot-isolated reads by construction.

The serving layer never lets a reader observe in-flight ingest state.
Everything a read can touch is packaged into an immutable
:class:`KBVersion` — the claim store, the fusion verdicts, and the
ingest bookkeeping (consumed offset + dedup fence) that produced them
— and the only way the served state changes is
:meth:`VersionedKB.commit` rebinding the current-version attribute.
A single attribute rebind is atomic under the interpreter, so a reader
that pinned version *N* keeps answering from *N* while version *N+1*
commits; there is no observable torn state, mirroring the
single-rebind commit the incremental engine already proves chaos-safe
(:mod:`repro.incremental.engine`).

Version stores follow the engine's copy-on-write discipline: each
committed :class:`~repro.incremental.engine._FusionState` owns a store
that is never mutated again (deltas journal against copies), so a
``KBVersion`` can hold the engine's store *by reference* — zero-copy
over the segment backend's mmapped files — and still be immutable.
Callers outside that discipline should pin with
:meth:`repro.rdf.store.TripleStore.pin` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.fusion.base import FusionResult
from repro.rdf.store import TripleStore

__all__ = ["KBVersion", "VersionedKB"]


@dataclass(frozen=True, slots=True)
class KBVersion:
    """One committed, immutable serving state.

    ``version_id`` counts commits (0 is the primed base corpus);
    ``sequence`` is the incremental engine's delta counter for this
    state.  ``applied`` is the dedup fence: the event ids whose deltas
    are folded into this version — redelivered or duplicate-published
    events whose id is in the fence are skipped, never re-applied.
    ``offset`` is the next event-log offset this version expects,
    so a restarted consumer resumes exactly where the committed state
    left off.
    """

    version_id: int
    sequence: int
    store: TripleStore
    result: FusionResult
    offset: int = 0
    applied: frozenset[str] = field(default_factory=frozenset)
    label: str = ""

    def canonical_bytes(self) -> bytes:
        """Canonical serialization of the served verdicts.

        Delegates to :meth:`FusionResult.canonical_bytes`; two versions
        serving byte-identical decisions compare equal here regardless
        of how many redeliveries or retries produced them.
        """
        return self.result.canonical_bytes()

    def describe(self) -> dict:
        """JSON-ready summary (no claim payloads)."""
        return {
            "version_id": self.version_id,
            "sequence": self.sequence,
            "offset": self.offset,
            "applied_events": len(self.applied),
            "claims": len(self.store),
            "fused_items": len(self.result.truths),
            "label": self.label,
        }


class VersionedKB:
    """The atomically-swapped current-version handle.

    ``pin()`` hands out the current :class:`KBVersion`; ``commit()``
    installs a successor with one attribute rebind.  Commits must be
    monotonic in ``version_id`` — the serving consumer is the single
    writer, and a stale commit (e.g. from a logic bug resurrecting an
    old state) is refused rather than silently regressing reads.
    """

    def __init__(self, initial: KBVersion) -> None:
        if initial.version_id < 0:
            raise ServingError("initial version_id must be >= 0")
        self._current = initial
        self._commits = 0

    @property
    def current(self) -> KBVersion:
        """The most recently committed version (not pinned — live)."""
        return self._current

    @property
    def commits(self) -> int:
        """How many successor versions have been committed."""
        return self._commits

    def pin(self) -> KBVersion:
        """Pin the current version for torn-free reads.

        The returned object is frozen and its store is never mutated
        (copy-on-write discipline), so the pin stays valid forever —
        staleness, not corruption, is the only cost of holding it.
        """
        return self._current

    def commit(self, version: KBVersion) -> KBVersion:
        """Install a successor version (the single-rebind commit point).

        Raises :class:`~repro.errors.ServingError` unless
        ``version.version_id`` is exactly one past the current id.
        """
        current = self._current
        if version.version_id != current.version_id + 1:
            raise ServingError(
                f"non-monotonic commit: version {version.version_id} "
                f"after {current.version_id}"
            )
        # The commit point: everything before this line is invisible
        # to readers, everything after is fully visible.
        self._current = version
        self._commits += 1
        return version
