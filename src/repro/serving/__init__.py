"""Crash-safe KB serving: versioned reads over an event-stream ingest.

The batch pipeline fuses a KB; this package *serves* it.  Readers pin
immutable :class:`KBVersion` snapshots (store + fusion verdicts) while
deltas commit new versions through a single atomic rebind, and ingest
arrives as an append-only :class:`EventLog` consumed at-least-once
with a dedup fence for exactly-once application.  See
:mod:`repro.serving.server` for the full crash-safety argument.
"""

from repro.serving.query import FactView, KBReader
from repro.serving.server import KBServer, ServingStatus, StepOutcome
from repro.serving.stream import EventLog, StreamEvent, delta_event_id
from repro.serving.tenancy import (
    TenantEvalRow,
    TenantManager,
    TenantMixReport,
    TenantRuntime,
    tenant_fingerprint,
)
from repro.serving.version import KBVersion, VersionedKB

__all__ = [
    "EventLog",
    "FactView",
    "KBReader",
    "KBServer",
    "KBVersion",
    "ServingStatus",
    "StepOutcome",
    "StreamEvent",
    "TenantEvalRow",
    "TenantManager",
    "TenantMixReport",
    "TenantRuntime",
    "VersionedKB",
    "delta_event_id",
    "tenant_fingerprint",
]
