"""Append-only event log with consumer groups and explicit load shedding.

The serving layer's ingest path is a stream, not a function call
(ROADMAP item 1; the async-first consumer-group architecture the
Engram ADR in SNIPPETS.md documents): producers *publish* claim deltas
as immutable :class:`StreamEvent` records, and the serving consumer
*delivers* them in offset order with at-least-once semantics.  The
pieces:

* **Offsets** — events are numbered densely from 0 in append order.
  The log never reorders and never drops an accepted event.
* **Consumer groups** — each named group tracks a *committed offset*
  (the next offset it has durably processed up to).  Delivery reads
  from the committed offset, so a consumer that crashed mid-event is
  redelivered that event on restart: at-least-once by construction.
  Exactly-once *effects* are the consumer's job, via the dedup fence
  committed inside :class:`~repro.serving.version.KBVersion`.
* **At-least-once publishing** — a producer that times out and
  retries may append the same logical event twice.  The log accepts
  both (it cannot know the first append succeeded); the duplicate
  carries the same ``event_id``, and the consumer's fence skips it.
* **Backpressure** — the log bounds *uncommitted backlog*, not total
  history.  When the slowest registered group lags ``capacity`` events
  behind the head, ``append`` sheds load by raising
  :class:`~repro.errors.BackpressureError` with an explicit reason —
  never a silent drop — and counts the rejection in the metrics
  registry (``stream_rejected_total``).
* **Compaction** — offsets are logical, not list indexes.  Once every
  registered group has committed past an event it can never be
  delivered again, so the log drops the committed prefix and advances
  :attr:`EventLog.base` (amortized O(1): a compaction only runs when
  the droppable prefix is at least half the buffer).  ``head``,
  ``lag``, ``commit_offset`` and ``read`` keep their offset semantics;
  ``read`` of a compacted offset raises exactly like a never-written
  one.  A long-lived server therefore holds O(backlog) events, not
  O(history).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import BackpressureError, ServingError
from repro.incremental.delta import ClaimDelta, delta_to_json_dict

__all__ = ["EventLog", "StreamEvent", "delta_event_id"]


def delta_event_id(delta: ClaimDelta) -> str:
    """Content-derived event id for retry-safe publishing.

    Two publishes of the same delta content get the same id, so a
    producer that re-publishes after an ambiguous failure is
    deduplicated by the consumer fence.  Distinct deltas that happen
    to share content (legitimate re-assertions) must pass an explicit
    ``event_id`` instead.
    """
    payload = json.dumps(
        delta_to_json_dict(delta), sort_keys=True, separators=(",", ":")
    )
    return "sha:" + hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One immutable log entry: a claim delta at an offset."""

    offset: int
    event_id: str
    delta: ClaimDelta

    def describe(self) -> dict:
        return {
            "offset": self.offset,
            "event_id": self.event_id,
            "label": self.delta.label,
            "added": len(self.delta.added),
            "retracted": len(self.delta.retracted),
        }


class EventLog:
    """In-process append-only delta log with per-group offset tracking."""

    def __init__(self, capacity: int = 1024, *, metrics=None) -> None:
        if capacity < 1:
            raise ServingError("event log capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._events: list[StreamEvent] = []
        # Logical offset of _events[0]; rises as the committed prefix
        # compacts away.  All public offsets stay logical.
        self._base = 0
        # group -> next offset to deliver (== events durably processed).
        self._committed: dict[str, int] = {}
        # event_id -> retained occurrences; consumers age their dedup
        # fences against this (an id with no retained occurrence can
        # never be delivered again).
        self._id_counts: dict[str, int] = {}

    # -- producer side -------------------------------------------------
    def append(
        self, delta: ClaimDelta, *, event_id: str | None = None
    ) -> StreamEvent:
        """Publish one delta; returns its immutable log entry.

        ``event_id`` defaults to a content digest
        (:func:`delta_event_id`) so plain publishers get retry-safe
        idempotency for free.  Raises
        :class:`~repro.errors.BackpressureError` when the backlog
        bound would be breached; the log is untouched in that case.
        """
        delta.validate()
        backlog = self.head - self.slowest_committed()
        if backlog >= self.capacity:
            self._count("stream_rejected_total", reason="consumer-lag")
            raise BackpressureError(
                f"event log backlog {backlog} >= capacity "
                f"{self.capacity}: consumer lagging, publish rejected "
                "(retry after the consumer drains)",
                reason="consumer-lag",
            )
        event = StreamEvent(
            offset=self.head,
            event_id=(
                event_id if event_id is not None else delta_event_id(delta)
            ),
            delta=delta,
        )
        self._events.append(event)
        self._id_counts[event.event_id] = (
            self._id_counts.get(event.event_id, 0) + 1
        )
        self._count("stream_events_published_total")
        return event

    # -- consumer side -------------------------------------------------
    def register(self, group: str, *, offset: int = 0) -> None:
        """Register a consumer group starting at ``offset``.

        Re-registering an existing group is a no-op (the committed
        offset is durable state owned by the group's committed
        version, not reset by reconnecting).
        """
        if group in self._committed:
            # Reconnect: committed progress is durable, never reset.
            return
        if offset < self._base or offset > self.head:
            raise ServingError(
                f"cannot register {group!r} at offset {offset}: log "
                f"retains [{self._base}, {self.head}]"
            )
        self._committed[group] = offset

    def unregister(self, group: str) -> None:
        """Remove a consumer group from the backpressure bound.

        A decommissioned consumer that is never unregistered clamps
        ``slowest_committed`` forever: once it lags ``capacity`` events
        every publish rejects, wedging the log for the consumers that
        are still alive.  Unregistering releases the bound (and lets
        the committed prefix compact past the dead group's offset).
        Unknown groups raise — silently "removing" a typo would leave
        the real dead group wedging the log.
        """
        if group not in self._committed:
            raise ServingError(f"unknown consumer group {group!r}")
        del self._committed[group]

    def next_event(self, group: str) -> StreamEvent | None:
        """The next undelivered event for a group (None when caught up).

        Reading does not advance the group — only :meth:`commit_offset`
        does, so a consumer that crashes between read and commit gets
        the same event redelivered.
        """
        offset = self._require_group(group)
        if offset >= self.head:
            return None
        return self._events[offset - self._base]

    def commit_offset(self, group: str, offset: int) -> None:
        """Durably acknowledge processing up to (excluding) ``offset``."""
        current = self._require_group(group)
        if offset < current or offset > self.head:
            raise ServingError(
                f"invalid offset commit for {group!r}: {offset} "
                f"(committed {current}, head {self.head})"
            )
        self._committed[group] = offset
        self._maybe_compact()

    # -- compaction ------------------------------------------------------
    @property
    def base(self) -> int:
        """The oldest retained offset (0 until the first compaction)."""
        return self._base

    def has_id(self, event_id: str) -> bool:
        """Whether any *retained* event carries this id.

        ``False`` means every occurrence has compacted away, so no
        consumer can ever be delivered it again — the signal dedup
        fences use to age out entries
        (:meth:`repro.serving.server.KBServer.step`).
        """
        return event_id in self._id_counts

    def compact(self) -> int:
        """Drop every event all groups have committed past.

        Returns the number of events dropped.  Offsets are unaffected
        (they are logical); only :meth:`read` of a dropped offset
        changes observable behavior, raising like any other
        out-of-range offset.  With no registered groups nothing is
        droppable — commitment is what proves an event unreachable.
        """
        if not self._committed:
            return 0
        drop = min(self.slowest_committed(), self.head) - self._base
        if drop <= 0:
            return 0
        for event in self._events[:drop]:
            count = self._id_counts[event.event_id] - 1
            if count:
                self._id_counts[event.event_id] = count
            else:
                del self._id_counts[event.event_id]
        del self._events[:drop]
        self._base += drop
        self._count("stream_compacted_total", amount=drop)
        return drop

    def _maybe_compact(self) -> None:
        # Amortized O(1): only sweep when at least half the buffer is
        # droppable, so each retained event is shifted O(1) times.
        droppable = self.slowest_committed() - self._base
        if droppable > 0 and droppable * 2 >= len(self._events):
            self.compact()

    # -- introspection -------------------------------------------------
    @property
    def head(self) -> int:
        """Offset one past the newest event."""
        return self._base + len(self._events)

    def committed(self, group: str) -> int:
        """The group's committed offset."""
        return self._require_group(group)

    def lag(self, group: str) -> int:
        """Events published but not yet committed by the group."""
        return self.head - self._require_group(group)

    def slowest_committed(self) -> int:
        """The minimum committed offset across groups (base if none).

        With no registered groups this is the log's base — **not** the
        head — so the backlog bound degrades to an absolute cap on
        retained events: a producer-only log still cannot grow without
        bound (and, never having committed anything, never compacts).
        """
        if not self._committed:
            return self._base
        return min(self._committed.values())

    def read(self, offset: int) -> StreamEvent:
        """Random-access read (inspection/replay tooling).

        Raises for offsets never written *and* for offsets already
        compacted away — history below :attr:`base` is gone.
        """
        if not self._base <= offset < self.head:
            raise ServingError(
                f"offset {offset} out of range [{self._base}, "
                f"{self.head})"
            )
        return self._events[offset - self._base]

    def _require_group(self, group: str) -> int:
        offset = self._committed.get(group)
        if offset is None:
            raise ServingError(f"unknown consumer group {group!r}")
        return offset

    def _count(self, name: str, *, amount: int = 1, **labels) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, **labels).inc(amount)
