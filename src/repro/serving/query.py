"""Query surface over one pinned KB version.

A :class:`KBReader` answers every query from exactly one
:class:`~repro.serving.version.KBVersion` — the version it pinned at
construction.  Because versions are immutable, a reader is wait-free
with respect to ingest: deltas committing new versions never change
what an existing reader answers, and a fresh reader picks up the new
version wholesale.  This is snapshot isolation by construction, not by
locking.

Three query families, each riding an existing index:

* **point lookup** — :meth:`lookup` resolves one data item
  ``(subject, predicate)`` to its fused truth values with belief
  scores and supporting-claim counts (SPO path);
* **scans** — :meth:`scan_subject` enumerates every fused fact of one
  entity (SPO), :meth:`scan_predicate` every entity holding a fused
  value for one attribute (POS);
* **top-k** — :meth:`top_entities` ranks subjects by the summed
  belief of their fused facts, a cheap "most strongly attested
  entities" ranking computed lazily once per reader and cached
  (versions are immutable, so the cache can never go stale).

Reads against a segment-backed store go through the backend's mmapped
CSR indexes without materializing the corpus — the zero-copy path the
PR 7 storage engine built.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.version import KBVersion

__all__ = ["FactView", "KBReader"]


@dataclass(frozen=True, slots=True)
class FactView:
    """One fused data item as a reader returns it.

    ``values`` are the fused-true value keys (sorted, deterministic);
    ``beliefs`` maps each to its fusion belief score; ``claims`` counts
    the supporting claims the store holds for the item (every value,
    not only the fused-true ones).
    """

    subject: str
    predicate: str
    values: tuple[str, ...]
    beliefs: dict[str, float]
    claims: int

    def is_empty(self) -> bool:
        return not self.values

    def best(self) -> str | None:
        """The highest-belief fused value (ties broken lexically)."""
        if not self.values:
            return None
        return max(self.values, key=lambda value: (self.beliefs[value], value))


class KBReader:
    """Reads pinned to one immutable KB version."""

    def __init__(self, version: KBVersion, *, metrics=None) -> None:
        self.version = version
        self.metrics = metrics
        self._ranking: list[tuple[float, str]] | None = None
        self._by_predicate: dict[str, list[str]] | None = None

    # -- point lookups -------------------------------------------------
    def lookup(self, subject: str, predicate: str) -> FactView:
        """Fused truths for one data item (empty view when undecided)."""
        self._count_read("lookup")
        item = (subject, predicate)
        result = self.version.result
        values = tuple(sorted(result.truths.get(item, ())))
        return FactView(
            subject=subject,
            predicate=predicate,
            values=values,
            beliefs={
                value: result.belief_of(item, value) for value in values
            },
            claims=len(self.version.store.claims_for_item(subject, predicate)),
        )

    def belief(self, subject: str, predicate: str, value: str) -> float:
        """Belief score of one (item, value) pair (0.0 when unknown)."""
        self._count_read("belief")
        return self.version.result.belief_of((subject, predicate), value)

    # -- scans ---------------------------------------------------------
    def scan_subject(self, subject: str) -> list[FactView]:
        """Every fused fact of one entity, predicate-sorted.

        Predicates come from the pinned store's SPO index; items the
        store asserts but fusion did not decide appear as empty views,
        so callers can distinguish "no claims" from "undecided".
        """
        self._count_read("scan_subject")
        return [
            self.lookup(subject, predicate)
            for predicate in sorted(self.version.store.predicates(subject))
        ]

    def scan_predicate(
        self, predicate: str, *, limit: int | None = None
    ) -> list[FactView]:
        """Every entity with a fused value for one attribute.

        Subject-sorted and optionally bounded; only items with at
        least one fused-true value are returned.  Scans walk a
        per-predicate index of fused-true subjects built lazily once
        per reader (the pinned version is immutable, so it can never
        go stale) — ``limit`` then slices the index instead of
        materializing and sorting every matching store subject, so a
        ``limit=1`` scan touches one subject, not the whole corpus.
        """
        self._count_read("scan_predicate")
        if self._by_predicate is None:
            by_predicate: dict[str, list[str]] = {}
            for (subject, item_predicate), values in (
                self.version.result.truths.items()
            ):
                if values:
                    by_predicate.setdefault(item_predicate, []).append(
                        subject
                    )
            for subjects in by_predicate.values():
                subjects.sort()
            self._by_predicate = by_predicate
        subjects = self._by_predicate.get(predicate, [])
        if limit is not None:
            subjects = subjects[:max(0, limit)]
        return [self.lookup(subject, predicate) for subject in subjects]

    # -- top-k ---------------------------------------------------------
    def top_entities(self, k: int) -> list[tuple[str, float]]:
        """The k subjects with the highest summed fused-fact belief.

        Deterministic: score descending, then subject ascending.  The
        full ranking is computed once per reader and cached — the
        pinned version can never change under it.
        """
        self._count_read("top_entities")
        if self._ranking is None:
            scores: dict[str, float] = {}
            result = self.version.result
            for (subject, _predicate), value_set in result.truths.items():
                for value in value_set:
                    scores[subject] = scores.get(subject, 0.0) + (
                        result.belief.get(((subject, _predicate), value), 0.0)
                    )
            self._ranking = sorted(
                ((score, subject) for subject, score in scores.items()),
                key=lambda pair: (-pair[0], pair[1]),
            )
        return [
            (subject, score) for score, subject in self._ranking[:k]
        ]

    # -- plumbing ------------------------------------------------------
    def _count_read(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("serving_reads_total", kind=kind).inc()
