"""The crash-safe KB server: stream consumption + versioned serving.

:class:`KBServer` is the single consumer of an :class:`EventLog` and
the single writer of a :class:`VersionedKB`.  One :meth:`step`
processes one event end to end:

1. **deliver** — read the event at the group's committed offset
   (``stream:deliver`` fault point).  Reading does not advance
   anything, so a crash here costs nothing but a redelivery.
2. **fence check** — if the event id is already in the committed
   version's dedup fence, the delta's effects are in the served state:
   skip the apply entirely and just acknowledge the offset.  This is
   what makes at-least-once delivery *exactly-once application*: both
   publisher retries (same id, two offsets) and post-commit crash
   redelivery (same offset re-read) land here.
3. **apply** — journal the delta through the incremental engine under
   a deterministic :class:`~repro.mapreduce.engine.RetryPolicy` loop
   (``stream:apply``, attempt-aware).  A failure whose engine sequence
   advanced anyway crashed *after* the engine's internal commit point
   — the delta is in; treat it as applied, never re-apply.  A failure
   that exhausts the budget is a **poison delta**: it is diverted into
   the :class:`~repro.core.quarantine.Quarantine` dead-letter hold
   (listable, inspectable, re-enqueuable exactly once via
   :meth:`requeue_quarantined`), fenced so redelivery skips it, and
   the consumer moves on — ingest failure degrades, never stops,
   serving.
4. **commit** — build the successor :class:`KBVersion` (store, result,
   fence ∪ {id}, offset+1) and install it with the single-rebind
   commit (``stream:commit`` fires before, ``stream:post-commit``
   after).  A crash before the rebind leaves reads fully pre-delta; a
   crash after it, before the offset ack, is healed by the fence on
   redelivery.

Re-applying a delta after a crash between the engine's commit and the
serving commit is content-idempotent: retractions of absent triples
are no-ops, re-added claims deduplicate, and fused verdicts are a pure
function of store content — so the healed run is byte-identical to a
fault-free one (the chaos suite pins this).

Degradation is observable, never silent: the obs registry carries
``serving_version`` / ``serving_lag_events`` / ``serving_degraded``
gauges and ``stream_*`` counters, so an operator can tell "serving a
stale version because ingest is failing" from "caught up".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.quarantine import Quarantine
from repro.errors import BackpressureError, ServingError
from repro.incremental.delta import ClaimDelta
from repro.mapreduce.engine import RetryPolicy
from repro.serving.query import KBReader
from repro.serving.stream import EventLog, StreamEvent
from repro.serving.version import KBVersion, VersionedKB

__all__ = ["KBServer", "ServingStatus", "StepOutcome"]

#: Quarantine source name for poison deltas.
STREAM_SOURCE = "stream"


@dataclass(frozen=True, slots=True)
class StepOutcome:
    """What one consumed event did to the served state."""

    offset: int
    event_id: str
    action: str  # "applied" | "skipped" | "poisoned"
    version_id: int
    sequence: int
    attempts: int = 1
    error: str | None = None
    wall_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "offset": self.offset,
            "event_id": self.event_id,
            "action": self.action,
            "version_id": self.version_id,
            "sequence": self.sequence,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass(frozen=True, slots=True)
class ServingStatus:
    """Operator-facing snapshot of the serving side."""

    version_id: int
    sequence: int
    committed_offset: int
    head_offset: int
    lag_events: int
    applied_events: int
    degraded: bool
    poisoned: int
    quarantined_held: int

    def to_json_dict(self) -> dict:
        return {
            "version_id": self.version_id,
            "sequence": self.sequence,
            "committed_offset": self.committed_offset,
            "head_offset": self.head_offset,
            "lag_events": self.lag_events,
            "applied_events": self.applied_events,
            "degraded": self.degraded,
            "poisoned": self.poisoned,
            "quarantined_held": self.quarantined_held,
        }


class KBServer:
    """Snapshot-isolated reads over a redeliverable delta stream.

    ``engine`` is a primed
    :class:`~repro.incremental.engine.IncrementalFusion`;  the server
    becomes its single driver (nothing else may call ``apply_delta``
    on it once serving starts).  ``retry`` defaults to three attempts
    with the standard deterministic backoff; pass a policy with
    ``jitter`` set when several servers share one upstream.
    """

    def __init__(
        self,
        engine,
        log: EventLog | None = None,
        *,
        group: str = "serving",
        retry: RetryPolicy | None = None,
        quarantine: Quarantine | None = None,
        metrics=None,
        fault_plan=None,
    ) -> None:
        if engine.sequence < 0:
            raise ServingError(
                "KBServer needs a primed incremental engine "
                "(call begin_incremental first)"
            )
        self.engine = engine
        self.metrics = metrics
        self.fault_plan = fault_plan
        self.group = group
        self.log = log if log is not None else EventLog(metrics=metrics)
        self.retry = retry if retry is not None else RetryPolicy()
        self.quarantine = (
            quarantine if quarantine is not None else Quarantine()
        )
        self.versions = VersionedKB(
            KBVersion(
                version_id=0,
                sequence=engine.sequence,
                store=engine.store,
                result=engine.result,
                offset=0,
                label="primed",
            )
        )
        self._degraded = False
        self._poisoned = 0
        # Lifetime count of events fenced (applied + poisoned).  The
        # fence inside the committed version ages with log compaction,
        # so it no longer doubles as this statistic.
        self._fenced_total = 0
        # Log base the fence was last aged against; re-age lazily only
        # when compaction has advanced it.
        self._fence_base = self.log.base
        self.log.register(group, offset=0)
        self._publish_gauges()

    # -- producer convenience ------------------------------------------
    def publish(
        self, delta: ClaimDelta, *, event_id: str | None = None
    ) -> StreamEvent:
        """Append one delta to the log (subject to backpressure)."""
        return self.log.append(delta, event_id=event_id)

    # -- read side -----------------------------------------------------
    def reader(self) -> KBReader:
        """A reader pinned to the current committed version."""
        return KBReader(self.versions.pin(), metrics=self.metrics)

    def status(self) -> ServingStatus:
        """Current serving/ingest health (also refreshes the gauges)."""
        self._publish_gauges()
        version = self.versions.current
        return ServingStatus(
            version_id=version.version_id,
            sequence=version.sequence,
            committed_offset=self.log.committed(self.group),
            head_offset=self.log.head,
            lag_events=self.log.lag(self.group),
            applied_events=self._fenced_total,
            degraded=self._degraded,
            poisoned=self._poisoned,
            quarantined_held=len(
                self.quarantine.held.get(STREAM_SOURCE, ())
            ),
        )

    # -- consume side --------------------------------------------------
    def step(self) -> StepOutcome | None:
        """Consume one event; None when the log is drained.

        Raises whatever crashes outside the retried apply loop (the
        chaos tests use this to kill the consumer at each stage); the
        served state is consistent at every such point.
        """
        event = self.log.next_event(self.group)
        if event is None:
            self._publish_gauges()
            return None
        started = time.perf_counter()
        injected = self._fault("stream:deliver", event.offset)

        version = self.versions.current
        if event.event_id in version.applied:
            # Dedup fence hit: effects already committed (publisher
            # duplicate, or redelivery after a post-commit crash).
            self.log.commit_offset(self.group, event.offset + 1)
            self._count("stream_duplicates_skipped_total")
            self._publish_gauges()
            return StepOutcome(
                offset=event.offset,
                event_id=event.event_id,
                action="skipped",
                version_id=version.version_id,
                sequence=version.sequence,
                wall_seconds=time.perf_counter() - started + injected,
            )

        applied, attempts, failure, slow = self._apply_with_retry(event)
        injected += slow

        injected += self._fault("stream:commit", event.offset)
        fence = self._aged_fence(version) | {event.event_id}
        if applied:
            successor = KBVersion(
                version_id=version.version_id + 1,
                sequence=self.engine.sequence,
                store=self.engine.store,
                result=self.engine.result,
                offset=event.offset + 1,
                applied=fence,
                label=event.delta.label,
            )
            self._degraded = False
        else:
            # Poison delta: park it, fence it, keep serving the last
            # good version.  The KB content is unchanged; the version
            # still advances so the fence/offset are committed state.
            self.quarantine.divert(
                STREAM_SOURCE,
                event,
                reason=f"poison-delta: {failure}",
                retain=True,
            )
            successor = KBVersion(
                version_id=version.version_id + 1,
                sequence=version.sequence,
                store=version.store,
                result=version.result,
                offset=event.offset + 1,
                applied=fence,
                label=version.label,
            )
            self._degraded = True
            self._poisoned += 1
        self.versions.commit(successor)
        self._fenced_total += 1
        injected += self._fault("stream:post-commit", event.offset)
        self.log.commit_offset(self.group, event.offset + 1)

        wall = time.perf_counter() - started + injected
        action = "applied" if applied else "poisoned"
        self._count(f"stream_events_{action}_total")
        if attempts > 1:
            self._count("stream_retries_total", attempts - 1)
        if self.metrics is not None:
            self.metrics.histogram("stream_apply_seconds").observe(wall)
        self._publish_gauges()
        return StepOutcome(
            offset=event.offset,
            event_id=event.event_id,
            action=action,
            version_id=successor.version_id,
            sequence=successor.sequence,
            attempts=attempts,
            error=failure,
            wall_seconds=wall,
        )

    def drain(self, max_events: int | None = None) -> list[StepOutcome]:
        """Consume until the log is empty (or ``max_events`` reached)."""
        outcomes: list[StepOutcome] = []
        while max_events is None or len(outcomes) < max_events:
            outcome = self.step()
            if outcome is None:
                break
            outcomes.append(outcome)
        return outcomes

    def requeue_quarantined(self) -> list[StreamEvent]:
        """Re-enqueue every parked poison delta (exactly once).

        Drains the dead-letter hold — a second call republishes
        nothing — and publishes each delta under a derived event id
        (the original id is fenced, so reusing it would be skipped).

        A publish the log sheds (:class:`BackpressureError`) must not
        lose anything: the failed delta and every not-yet-published
        one behind it are re-parked in the hold, in order, before the
        error propagates (counted in ``stream_requeue_deferred_total``)
        — the next call picks them up where this one stopped.
        """
        events: list[StreamEvent] = []
        entries = self.quarantine.drain_entries(STREAM_SOURCE)
        for position, (reason, item) in enumerate(entries):
            if not isinstance(item, StreamEvent):
                self.quarantine.repark(STREAM_SOURCE, entries[position:])
                raise ServingError(
                    f"unexpected dead-letter item: {type(item).__name__}"
                )
            try:
                event = self.log.append(
                    item.delta, event_id=f"{item.event_id}#requeue"
                )
            except BackpressureError:
                deferred = entries[position:]
                self.quarantine.repark(STREAM_SOURCE, deferred)
                self._count("stream_requeue_deferred_total", len(deferred))
                raise
            events.append(event)
            self._count("stream_requeued_total")
        return events

    # -- internals -----------------------------------------------------
    def _aged_fence(self, version: KBVersion) -> frozenset[str]:
        """The committed fence minus ids the log can never deliver again.

        An id only earns its place in the fence while the log retains
        an occurrence of it (a publisher duplicate or crash redelivery
        still to come); once compaction drops the last occurrence the
        entry is dead weight, and without aging a long-lived server's
        fence grows one id per event forever.  Aging is lazy: steady
        state pays one integer compare, and the full filter runs only
        when compaction has advanced the log base since the last check.
        """
        base = self.log.base
        if base == self._fence_base:
            return version.applied
        self._fence_base = base
        return frozenset(
            event_id
            for event_id in version.applied
            if self.log.has_id(event_id)
        )

    def _apply_with_retry(
        self, event: StreamEvent
    ) -> tuple[bool, int, str | None, float]:
        """Apply one delta under the retry budget.

        Returns ``(applied, attempts, failure, injected_seconds)``;
        ``applied`` False means the budget is exhausted (poison).
        """
        budget = self.retry.max_attempts
        failure: str | None = None
        injected = 0.0
        for attempt in range(budget):
            pre_sequence = self.engine.sequence
            try:
                injected += self._fault(
                    "stream:apply", event.offset, attempt
                )
                self.engine.apply_delta(event.delta)
                return True, attempt + 1, None, injected
            except Exception as exc:  # noqa: BLE001 — consumer boundary
                if self.engine.sequence > pre_sequence:
                    # The engine committed before the crash surfaced
                    # (e.g. a stage:incremental-commit fault): the
                    # delta is applied; re-applying would double it.
                    return True, attempt + 1, None, injected
                failure = f"{type(exc).__name__}: {exc}"
                if attempt + 1 < budget:
                    self.retry.sleep(self.retry.backoff(attempt))
        return False, budget, failure, injected

    def _fault(self, scope: str, index: int, attempt: int = 0) -> float:
        if self.fault_plan is None:
            return 0.0
        return self.fault_plan.task_delay(scope, index, attempt)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _publish_gauges(self) -> None:
        if self.metrics is None:
            return
        version = self.versions.current
        gauge = self.metrics.gauge
        gauge("serving_version").set(version.version_id)
        gauge("serving_sequence").set(version.sequence)
        gauge("serving_lag_events").set(self.log.lag(self.group))
        gauge("serving_degraded").set(1.0 if self._degraded else 0.0)
        gauge("serving_fused_items").set(len(version.result.truths))
