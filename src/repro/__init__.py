"""repro — reproduction of "Generating Actionable Knowledge from Big
Data" (SIGMOD 2015 PhD Symposium).

A complete knowledge-base-construction framework: knowledge extraction
from four source types (existing KBs, query streams, DOM trees, Web
texts) with unified confidence scoring, followed by knowledge fusion
(multi-truth, hierarchy-aware, correlation- and confidence-aware),
entity linking/discovery, KB augmentation, and every substrate those
phases depend on (RDF store, HTML/DOM parser, text processing,
synthetic-world generators, a local MapReduce engine).

Quick start::

    from repro import KnowledgeBaseConstructionPipeline

    pipeline = KnowledgeBaseConstructionPipeline()
    report = pipeline.run()
    print(report.fusion_report.precision)
"""

from repro.core.pipeline import (
    IncrementalReport,
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    PipelineHealth,
    PipelineReport,
)
from repro.errors import (
    DeltaError,
    QuarantineOverflowError,
    ReproError,
    RetryExhaustedError,
    StageTimeoutError,
)
from repro.faults import FaultPlan
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.incremental import ClaimDelta, IncrementalFusion, load_delta, save_delta
from repro.mapreduce.engine import RetryPolicy
from repro.obs import MetricsRegistry, MetricsSnapshot, SpanTracer
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.world import GroundTruthWorld, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "ClaimDelta",
    "DeltaError",
    "FaultPlan",
    "GroundTruthWorld",
    "IncrementalFusion",
    "IncrementalReport",
    "KnowledgeBaseConstructionPipeline",
    "KnowledgeFusion",
    "load_delta",
    "save_delta",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PipelineConfig",
    "PipelineHealth",
    "PipelineReport",
    "Provenance",
    "QuarantineOverflowError",
    "ReproError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ScoredTriple",
    "SpanTracer",
    "StageTimeoutError",
    "Triple",
    "Value",
    "WorldConfig",
    "__version__",
]
