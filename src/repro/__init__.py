"""repro — reproduction of "Generating Actionable Knowledge from Big
Data" (SIGMOD 2015 PhD Symposium).

A complete knowledge-base-construction framework: knowledge extraction
from four source types (existing KBs, query streams, DOM trees, Web
texts) with unified confidence scoring, followed by knowledge fusion
(multi-truth, hierarchy-aware, correlation- and confidence-aware),
entity linking/discovery, KB augmentation, and every substrate those
phases depend on (RDF store, HTML/DOM parser, text processing,
synthetic-world generators, a local MapReduce engine).

Quick start::

    from repro import KnowledgeBaseConstructionPipeline

    pipeline = KnowledgeBaseConstructionPipeline()
    report = pipeline.run()
    print(report.fusion_report.precision)
"""

from repro.core.pipeline import (
    KnowledgeBaseConstructionPipeline,
    PipelineConfig,
    PipelineReport,
)
from repro.fusion.knowledge_fusion import KnowledgeFusion
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value
from repro.synth.world import GroundTruthWorld, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "GroundTruthWorld",
    "KnowledgeBaseConstructionPipeline",
    "KnowledgeFusion",
    "PipelineConfig",
    "PipelineReport",
    "Provenance",
    "ScoredTriple",
    "Triple",
    "Value",
    "WorldConfig",
    "__version__",
]
