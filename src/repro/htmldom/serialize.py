"""DOM serialisation back to HTML markup."""

from __future__ import annotations

from html import escape

from repro.htmldom.node import DomNode, ElementNode, TextNode
from repro.htmldom.tokenizer import VOID_ELEMENTS


def to_html(node: DomNode) -> str:
    """Serialise a DOM subtree to HTML markup.

    Text is entity-escaped; void elements render without end tags; the
    synthetic ``#document`` root renders only its children.
    """
    parts: list[str] = []
    _serialize(node, parts)
    return "".join(parts)


def _serialize(node: DomNode, parts: list[str]) -> None:
    if isinstance(node, TextNode):
        parts.append(escape(node.text, quote=False))
        return
    assert isinstance(node, ElementNode)
    if node.tag == "#document":
        for child in node.children:
            _serialize(child, parts)
        return
    attrs = "".join(
        f' {name}="{escape(value, quote=True)}"'
        for name, value in node.attrs.items()
    )
    if node.tag in VOID_ELEMENTS and not node.children:
        parts.append(f"<{node.tag}{attrs}/>")
        return
    parts.append(f"<{node.tag}{attrs}>")
    for child in node.children:
        _serialize(child, parts)
    parts.append(f"</{node.tag}>")
