"""A small HTML tokenizer.

Turns markup into a flat stream of :class:`HtmlToken` records —
start tags (with attributes), end tags, self-closing tags, text,
comments and doctypes.  It covers the HTML actually found on
data-intensive sites: quoted/unquoted attributes, void elements,
``<script>``/``<style>`` raw-text content, character references, and
sloppy constructs such as unclosed quotes at end of input.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from html import unescape

# Elements whose end tag is forbidden (HTML5 void elements).
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# Elements whose content is raw text until the matching end tag.
RAWTEXT_ELEMENTS = frozenset({"script", "style"})


class TokenType(enum.Enum):
    """Kinds of tokens emitted by the tokenizer."""

    START_TAG = "start"
    END_TAG = "end"
    SELF_CLOSING = "self"
    TEXT = "text"
    COMMENT = "comment"
    DOCTYPE = "doctype"


@dataclass(slots=True)
class HtmlToken:
    """One lexical unit of an HTML document."""

    type: TokenType
    data: str  # tag name, text content, or comment body
    attrs: dict[str, str] = field(default_factory=dict)


def tokenize(markup: str) -> list[HtmlToken]:
    """Tokenize HTML markup into a list of tokens.

    The tokenizer never raises on malformed input; it recovers the way
    browsers do (stray ``<`` becomes text, unterminated constructs run
    to end of input).
    """
    tokens: list[HtmlToken] = []
    position = 0
    length = len(markup)

    while position < length:
        lt = markup.find("<", position)
        if lt == -1:
            _emit_text(tokens, markup[position:])
            break
        if lt > position:
            _emit_text(tokens, markup[position:lt])
        if lt + 1 >= length:
            _emit_text(tokens, markup[lt:])
            break

        next_char = markup[lt + 1]
        if next_char == "!":
            position = _consume_markup_declaration(markup, lt, tokens)
        elif next_char == "/":
            position = _consume_end_tag(markup, lt, tokens)
        elif next_char.isalpha():
            position = _consume_start_tag(markup, lt, tokens)
        else:
            # A lone '<' that starts no tag is literal text.
            _emit_text(tokens, "<")
            position = lt + 1
    return tokens


def _emit_text(tokens: list[HtmlToken], raw: str) -> None:
    if raw:
        tokens.append(HtmlToken(TokenType.TEXT, unescape(raw)))


def _consume_markup_declaration(
    markup: str, start: int, tokens: list[HtmlToken]
) -> int:
    """Consume ``<!-- ... -->`` or ``<!DOCTYPE ...>`` starting at ``start``."""
    if markup.startswith("<!--", start):
        end = markup.find("-->", start + 4)
        if end == -1:
            tokens.append(HtmlToken(TokenType.COMMENT, markup[start + 4 :]))
            return len(markup)
        tokens.append(HtmlToken(TokenType.COMMENT, markup[start + 4 : end]))
        return end + 3
    gt = markup.find(">", start)
    if gt == -1:
        tokens.append(HtmlToken(TokenType.DOCTYPE, markup[start + 2 :]))
        return len(markup)
    tokens.append(HtmlToken(TokenType.DOCTYPE, markup[start + 2 : gt]))
    return gt + 1


def _consume_end_tag(markup: str, start: int, tokens: list[HtmlToken]) -> int:
    gt = markup.find(">", start)
    if gt == -1:
        _emit_text(tokens, markup[start:])
        return len(markup)
    name = markup[start + 2 : gt].strip().lower()
    if name:
        tokens.append(HtmlToken(TokenType.END_TAG, name))
    return gt + 1


def _consume_start_tag(markup: str, start: int, tokens: list[HtmlToken]) -> int:
    position = start + 1
    length = len(markup)
    name_start = position
    while position < length and (
        markup[position].isalnum() or markup[position] in "-_:"
    ):
        position += 1
    name = markup[name_start:position].lower()

    attrs, position, self_closing = _consume_attributes(markup, position)

    token_type = TokenType.SELF_CLOSING if self_closing else TokenType.START_TAG
    if name in VOID_ELEMENTS:
        token_type = TokenType.SELF_CLOSING
    tokens.append(HtmlToken(token_type, name, attrs))

    if token_type is TokenType.START_TAG and name in RAWTEXT_ELEMENTS:
        return _consume_rawtext(markup, position, name, tokens)
    return position


def _consume_attributes(
    markup: str, position: int
) -> tuple[dict[str, str], int, bool]:
    """Parse attributes until ``>``; returns (attrs, after-gt, self_closing)."""
    attrs: dict[str, str] = {}
    length = len(markup)
    self_closing = False
    while position < length:
        while position < length and markup[position].isspace():
            position += 1
        if position >= length:
            break
        char = markup[position]
        if char == ">":
            position += 1
            break
        if char == "/":
            position += 1
            if position < length and markup[position] == ">":
                self_closing = True
                position += 1
                break
            continue
        # Attribute name.
        name_start = position
        while position < length and markup[position] not in "=/> \t\r\n":
            position += 1
        attr_name = markup[name_start:position].lower()
        while position < length and markup[position].isspace():
            position += 1
        value = ""
        if position < length and markup[position] == "=":
            position += 1
            while position < length and markup[position].isspace():
                position += 1
            if position < length and markup[position] in "\"'":
                quote = markup[position]
                position += 1
                value_start = position
                end = markup.find(quote, position)
                if end == -1:
                    value = markup[value_start:]
                    position = length
                else:
                    value = markup[value_start:end]
                    position = end + 1
            else:
                value_start = position
                while position < length and markup[position] not in "> \t\r\n":
                    position += 1
                value = markup[value_start:position]
        if attr_name:
            attrs[attr_name] = unescape(value)
    return attrs, position, self_closing


def _consume_rawtext(
    markup: str, position: int, tag: str, tokens: list[HtmlToken]
) -> int:
    """Consume raw text content of <script>/<style> up to its end tag."""
    lower = markup.lower()
    close = f"</{tag}"
    end = lower.find(close, position)
    if end == -1:
        if position < len(markup):
            tokens.append(HtmlToken(TokenType.TEXT, markup[position:]))
        tokens.append(HtmlToken(TokenType.END_TAG, tag))
        return len(markup)
    if end > position:
        tokens.append(HtmlToken(TokenType.TEXT, markup[position:end]))
    gt = markup.find(">", end)
    tokens.append(HtmlToken(TokenType.END_TAG, tag))
    return len(markup) if gt == -1 else gt + 1
