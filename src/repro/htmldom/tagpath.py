"""Tag paths and tag-path similarity.

Algorithm 1 of the paper works on *tag paths*: the sequence of element
tags from the document root down to a text node.  The paths between an
entity node and a seed-attribute node are induced into a pattern set,
after "removal of noisy tags"; other nodes whose paths are *similar* to
an induced pattern are recognised as new attributes.

Two notions are provided:

* :func:`absolute_path` — root-to-node tag sequence;
* :func:`relative_path` — the structural relation between two nodes,
  expressed as the tag sequence climbing from the first node to their
  lowest common ancestor and descending to the second node.  This is
  what "tag path between E and A" means operationally: it is invariant
  to where the pair sits in the page, which lets a pattern learned from
  one (entity, seed) pair transfer to sibling records on the same page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htmldom.node import DomNode, ElementNode
from repro.textproc.memo import memoized_pair

# Purely presentational tags the paper removes as noise before
# comparing tag paths.
NOISY_TAGS = frozenset(
    {"b", "i", "em", "strong", "span", "font", "u", "small", "sup", "sub"}
)


def _ancestor_elements(node: DomNode) -> list[ElementNode]:
    """Elements from the root down to (and excluding) the node itself."""
    chain: list[ElementNode] = []
    current = node.parent
    while current is not None:
        if current.tag != "#document":
            chain.append(current)
        current = current.parent
    chain.reverse()
    return chain


def _tag_label(element: ElementNode, with_classes: bool) -> str:
    """The path label of one element: ``tag`` or ``tag.first-class``.

    Including the first CSS class disambiguates structurally identical
    positions (``div.key`` vs ``div.val``), which real-world wrapper
    induction also relies on.
    """
    if with_classes:
        class_attr = element.attrs.get("class", "").split()
        if class_attr:
            return f"{element.tag}.{class_attr[0]}"
    return element.tag


def _is_noisy(label: str) -> bool:
    return label.split(".", 1)[0] in NOISY_TAGS


def absolute_path(
    node: DomNode, *, clean: bool = True, with_classes: bool = False
) -> tuple[str, ...]:
    """Root-to-node tag sequence.

    For an element node the sequence includes the node's own tag; for a
    text node it ends at the enclosing element.  With ``clean=True``
    (the default, matching the paper) noisy formatting tags are removed.
    With ``with_classes=True`` each label carries the element's first
    CSS class (``div.key``).
    """
    elements = _ancestor_elements(node)
    if isinstance(node, ElementNode) and node.tag != "#document":
        elements.append(node)
    tags = [_tag_label(element, with_classes) for element in elements]
    if clean:
        tags = [tag for tag in tags if not _is_noisy(tag)]
    return tuple(tags)


@memoized_pair("tagpath-sequence")
def sequence_similarity(left: tuple[str, ...], right: tuple[str, ...]) -> float:
    """Normalised tag-sequence similarity in ``[0, 1]``.

    ``1 - levenshtein(left, right) / max(len)``; two empty sequences are
    identical (1.0).  Memoized (bounded, see :mod:`repro.textproc.memo`):
    pages sharing a layout score the same sequences over and over.
    """
    if not left and not right:
        return 1.0
    distance = _levenshtein(left, right)
    return 1.0 - distance / max(len(left), len(right))


def _levenshtein(left: tuple[str, ...], right: tuple[str, ...]) -> int:
    """Edit distance between two tag sequences (two-row DP)."""
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for row, tag_left in enumerate(left, start=1):
        current = [row] + [0] * len(right)
        for col, tag_right in enumerate(right, start=1):
            substitution = previous[col - 1] + (tag_left != tag_right)
            current[col] = min(previous[col] + 1, current[col - 1] + 1, substitution)
        previous = current
    return previous[-1]


@dataclass(frozen=True, slots=True)
class RelativeTagPath:
    """Structural relation between two nodes in one DOM tree.

    ``up`` is the tag sequence climbing from the first node's enclosing
    element to (excluding) the lowest common ancestor; ``lca`` is the
    common ancestor's tag; ``down`` descends from below the LCA to the
    second node's enclosing element.
    """

    up: tuple[str, ...]
    lca: str
    down: tuple[str, ...]

    def similarity(self, other: "RelativeTagPath") -> float:
        """Similarity in ``[0, 1]`` combining both arms and the LCA tag.

        The arms are compared by normalised edit distance; a mismatched
        LCA tag halves the score, since patterns anchored at different
        containers (e.g. a table vs. a list) rarely transfer.
        """
        return path_similarity(self, other)

    def __str__(self) -> str:
        up = "/".join(self.up) or "."
        down = "/".join(self.down) or "."
        return f"{up} ^{self.lca} {down}"


@memoized_pair("tagpath-relative", symmetric=False)
def path_similarity(left: RelativeTagPath, right: RelativeTagPath) -> float:
    """Memoized :meth:`RelativeTagPath.similarity` kernel.

    Algorithm 1 compares every candidate label's path against every
    induced pattern, and identical (path, pattern) pairs recur on every
    page of a site that shares a layout — the single hottest comparison
    in DOM extraction.  ``RelativeTagPath`` is frozen/hashable, so the
    pair itself is the cache key (orientation-sensitive: paths are not
    orderable, and the score is symmetric anyway, so each orientation
    simply warms its own entry).
    """
    up_similarity = sequence_similarity(left.up, right.up)
    down_similarity = sequence_similarity(left.down, right.down)
    score = (up_similarity + down_similarity) / 2.0
    if left.lca != right.lca:
        score *= 0.5
    return score


def relative_path(
    from_node: DomNode,
    to_node: DomNode,
    *,
    clean: bool = True,
    with_classes: bool = False,
) -> RelativeTagPath:
    """Compute the :class:`RelativeTagPath` between two nodes of one tree.

    Raises ``ValueError`` when the nodes do not share a root.
    """
    from_chain = _ancestor_elements(from_node)
    to_chain = _ancestor_elements(to_node)
    if isinstance(from_node, ElementNode):
        from_chain.append(from_node)
    if isinstance(to_node, ElementNode):
        to_chain.append(to_node)
    if not from_chain or not to_chain or from_chain[0] is not to_chain[0]:
        raise ValueError("nodes do not belong to the same document")

    common = 0
    for left, right in zip(from_chain, to_chain):
        if left is right:
            common += 1
        else:
            break
    lca = from_chain[common - 1]
    up_tags = [
        _tag_label(element, with_classes)
        for element in reversed(from_chain[common:])
    ]
    down_tags = [
        _tag_label(element, with_classes) for element in to_chain[common:]
    ]
    if clean:
        up_tags = [tag for tag in up_tags if not _is_noisy(tag)]
        down_tags = [tag for tag in down_tags if not _is_noisy(tag)]
    return RelativeTagPath(tuple(up_tags), _tag_label(lca, with_classes), tuple(down_tags))
