"""HTML/DOM substrate: tokenizer, parser, node model, tag paths."""

from repro.htmldom.node import Document, DomNode, ElementNode, TextNode
from repro.htmldom.parser import parse_fragment, parse_html
from repro.htmldom.serialize import to_html
from repro.htmldom.tagpath import (
    NOISY_TAGS,
    RelativeTagPath,
    absolute_path,
    relative_path,
    sequence_similarity,
)
from repro.htmldom.tokenizer import HtmlToken, TokenType, tokenize

__all__ = [
    "Document",
    "DomNode",
    "ElementNode",
    "HtmlToken",
    "NOISY_TAGS",
    "RelativeTagPath",
    "TextNode",
    "TokenType",
    "absolute_path",
    "parse_fragment",
    "parse_html",
    "relative_path",
    "sequence_similarity",
    "to_html",
    "tokenize",
]
