"""HTML parser: token stream → DOM tree.

Implements a pragmatic subset of the HTML5 tree-construction rules —
enough to build correct trees for the well-formed-but-sloppy markup a
data-intensive website emits: implied end tags for ``<li>``, ``<p>``,
table sections and cells, recovery from mismatched end tags, and
dropping of end tags that match nothing.
"""

from __future__ import annotations

from repro.htmldom.node import Document, DomNode, ElementNode, TextNode
from repro.htmldom.tokenizer import TokenType, tokenize

# When a new tag in the key set opens, any open element in the value set
# is implicitly closed first (simplified HTML5 "implied end tags").
_IMPLIED_CLOSE: dict[str, frozenset[str]] = {
    "li": frozenset({"li"}),
    "p": frozenset({"p"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "thead": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tbody": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tfoot": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
}

# Closing one of these implicitly closes everything up to it.
_SCOPE_TAGS = frozenset(
    {"table", "ul", "ol", "dl", "select", "html", "body", "head"}
)


def parse_html(markup: str) -> Document:
    """Parse HTML markup into a :class:`Document` tree.

    Never raises on malformed markup; recovers like a browser.
    """
    document = Document()
    stack: list[ElementNode] = [document]

    for token in tokenize(markup):
        if token.type is TokenType.TEXT:
            if token.data:
                # Normalise adjacent text (DOM Node.normalize()): keeps
                # serialise→parse a fixpoint even after tag recovery
                # leaves two text runs side by side.
                parent = stack[-1]
                if parent.children and isinstance(
                    parent.children[-1], TextNode
                ):
                    parent.children[-1].text += token.data
                else:
                    parent.append(TextNode(token.data))
        elif token.type is TokenType.START_TAG:
            _imply_end_tags(stack, token.data)
            element = ElementNode(token.data, token.attrs)
            stack[-1].append(element)
            stack.append(element)
        elif token.type is TokenType.SELF_CLOSING:
            _imply_end_tags(stack, token.data)
            stack[-1].append(ElementNode(token.data, token.attrs))
        elif token.type is TokenType.END_TAG:
            _close_tag(stack, token.data)
        # Comments and doctypes carry no tree structure; drop them.
    return document


def _imply_end_tags(stack: list[ElementNode], incoming: str) -> None:
    """Pop elements implicitly closed by the incoming start tag."""
    closers = _IMPLIED_CLOSE.get(incoming)
    if closers is None:
        return
    while len(stack) > 1 and stack[-1].tag in closers:
        stack.pop()


def _close_tag(stack: list[ElementNode], tag: str) -> None:
    """Handle an end tag: close up to the matching open element.

    An end tag that matches no open element is dropped, except that a
    scope tag (``</table>`` etc.) always pops intervening open elements
    when its opener is somewhere on the stack.
    """
    for index in range(len(stack) - 1, 0, -1):
        if stack[index].tag == tag:
            del stack[index:]
            return
    # No matching opener: ignore (browser behaviour for stray end tags).


def parse_fragment(markup: str) -> list[DomNode]:
    """Parse an HTML fragment and return its top-level nodes."""
    return list(parse_html(markup).children)
