"""DOM node model.

A deliberately small DOM: element nodes with a tag, attributes and
children, plus text nodes.  This is everything Algorithm 1 needs — the
DOM extractor only walks trees, reads text nodes, and computes tag
paths.
"""

from __future__ import annotations

from collections.abc import Iterator


class DomNode:
    """Common base for element and text nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: ElementNode | None = None

    def root(self) -> "DomNode":
        node: DomNode = self
        while node.parent is not None:
            node = node.parent
        return node


class TextNode(DomNode):
    """A text leaf."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"TextNode({preview!r})"


class ElementNode(DomNode):
    """An element with a tag name, attributes and ordered children."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(
        self,
        tag: str,
        attrs: dict[str, str] | None = None,
        children: list[DomNode] | None = None,
    ) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[DomNode] = []
        for child in children or []:
            self.append(child)

    def append(self, child: DomNode) -> DomNode:
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, text: str) -> TextNode:
        """Convenience: append and return a new text node."""
        node = TextNode(text)
        self.append(node)
        return node

    def append_element(
        self, tag: str, attrs: dict[str, str] | None = None
    ) -> "ElementNode":
        """Convenience: append and return a new element node."""
        node = ElementNode(tag, attrs)
        self.append(node)
        return node

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[DomNode]:
        """Depth-first pre-order walk, including self."""
        stack: list[DomNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def iter_elements(self, tag: str | None = None) -> Iterator["ElementNode"]:
        """All descendant elements (including self), optionally by tag."""
        for node in self.iter_nodes():
            if isinstance(node, ElementNode):
                if tag is None or node.tag == tag.lower():
                    yield node

    def iter_text_nodes(self) -> Iterator[TextNode]:
        """All descendant text nodes whose text is non-blank."""
        for node in self.iter_nodes():
            if isinstance(node, TextNode) and node.text.strip():
                yield node

    def text_content(self) -> str:
        """Concatenated, whitespace-normalised text of the subtree."""
        parts = [node.text.strip() for node in self.iter_text_nodes()]
        return " ".join(part for part in parts if part)

    def find(self, tag: str) -> "ElementNode | None":
        """First descendant element with the given tag, else None."""
        for element in self.iter_elements(tag):
            if element is not self:
                return element
        return None

    def find_all(self, tag: str) -> list["ElementNode"]:
        """All descendant elements with the given tag (excluding self)."""
        return [el for el in self.iter_elements(tag) if el is not self]

    def get(self, attr: str, default: str = "") -> str:
        """Attribute value with a default."""
        return self.attrs.get(attr, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ElementNode(<{self.tag}>, {len(self.children)} children)"


class Document(ElementNode):
    """Root of a parsed HTML document (a synthetic ``#document`` element)."""

    def __init__(self) -> None:
        super().__init__("#document")

    @property
    def html(self) -> ElementNode | None:
        """The top-level <html> element when present."""
        for child in self.children:
            if isinstance(child, ElementNode) and child.tag == "html":
                return child
        return None

    @property
    def body(self) -> ElementNode | None:
        """The <body> element when present."""
        return self.find("body")
