"""Delta journaling against the triple store.

The :class:`DeltaJournal` is the single write path of the incremental
subsystem: it applies a :class:`~repro.incremental.delta.ClaimDelta`
to a :class:`~repro.rdf.store.TripleStore` strictly through the
store's existing ``add``/``remove`` operations (so the store's
dedup/max-confidence semantics are the journal's semantics) and
records, per delta, a :class:`DeltaReceipt` naming the *dirty* data
items and sources — the seed set the fusion engine expands through
the connected-component structure of the claim graph.

Within one delta, retractions apply before additions, so a delta can
atomically replace a value for an item.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.incremental.delta import ClaimDelta
from repro.rdf.store import TripleStore

__all__ = ["DeltaJournal", "DeltaReceipt"]

Item = tuple[str, str]


@dataclass(slots=True)
class DeltaReceipt:
    """What one applied delta touched.

    ``added`` counts store insertions that changed state (brand-new
    claims or confidence refreshes); ``noop_additions`` counts adds
    the store deduplicated away; ``removed_claims`` counts the claim
    (triple, provenance) pairs a retraction dropped, and
    ``missing_retractions`` the retracted triples that were not in
    the store at all.  ``dirty_items`` / ``dirty_sources`` name every
    data item and source whose claim content may have changed —
    including the sources of removed claims, captured *before* the
    removal.
    """

    sequence: int
    label: str = ""
    added: int = 0
    noop_additions: int = 0
    removed_claims: int = 0
    missing_retractions: int = 0
    dirty_items: set[Item] = field(default_factory=set)
    dirty_sources: set[str] = field(default_factory=set)

    def to_json_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "label": self.label,
            "added": self.added,
            "noop_additions": self.noop_additions,
            "removed_claims": self.removed_claims,
            "missing_retractions": self.missing_retractions,
            "dirty_items": sorted(self.dirty_items),
            "dirty_sources": sorted(self.dirty_sources),
        }


class DeltaJournal:
    """Apply deltas to a store, keeping an ordered receipt trail."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self.receipts: list[DeltaReceipt] = []

    def apply(self, delta: ClaimDelta) -> DeltaReceipt:
        """Apply one delta; returns (and records) its receipt."""
        delta.validate()
        receipt = DeltaReceipt(
            sequence=len(self.receipts), label=delta.label
        )

        # Retractions first: capture the sources that held the triple
        # before the store forgets them.
        for triple in delta.retracted:
            victims = self.store.claims(triple)
            removed = self.store.remove(triple)
            if removed:
                receipt.removed_claims += removed
                receipt.dirty_items.add(triple.item)
                receipt.dirty_sources.update(
                    scored.provenance.source_id for scored in victims
                )
            else:
                receipt.missing_retractions += 1

        for scored in delta.added:
            before = len(self.store)
            self.store.add(scored)
            if len(self.store) != before:
                receipt.added += 1
            else:
                # Same (triple, provenance) key: the store either kept
                # the old claim (duplicate with <= confidence — a
                # no-op) or installed this one (a confidence refresh);
                # the two are told apart by object identity.
                refreshed = any(
                    existing is scored
                    for existing in self.store.claims(scored.triple)
                )
                if refreshed:
                    receipt.added += 1
                else:
                    receipt.noop_additions += 1
            receipt.dirty_items.add(scored.triple.item)
            receipt.dirty_sources.add(scored.provenance.source_id)

        self.receipts.append(receipt)
        return receipt
