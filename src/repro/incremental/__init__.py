"""Incremental updates: delta ingestion and dirty-component re-fusion.

The paper's framework is batch-shaped — extract everything, then fuse
everything — but a production system serves continuous traffic where
new claims trickle in and retractions arrive out of band.  This
package provides the update path:

* :mod:`repro.incremental.delta` — the :class:`ClaimDelta` model (a
  batch of added scored triples plus retracted triples) with a JSON
  wire format for the CLI's ``--apply-delta``;
* :mod:`repro.incremental.journal` — :class:`DeltaJournal`, which
  applies deltas to a :class:`~repro.rdf.store.TripleStore` through
  the store's existing ``add``/``remove`` paths and records a
  :class:`DeltaReceipt` of dirty items/sources per delta;
* :mod:`repro.incremental.engine` — :class:`IncrementalFusion`, which
  keeps per-connected-component fusion results cached and, on each
  delta, re-fuses only the *dirty* components (those whose claim
  content changed), merging fresh verdicts with cached ones.

Correctness contract: at ``tolerance=0`` the merged result of
``apply_delta`` is byte-identical (on the canonical serialization of
:meth:`~repro.fusion.base.FusionResult.canonical_bytes`) to a full
re-fusion of the post-delta claim set — pinned by the seeded replay
tests in ``tests/property/test_prop_incremental.py``.
"""

from repro.incremental.delta import (
    ClaimDelta,
    delta_from_json_dict,
    delta_to_json_dict,
    load_delta,
    save_delta,
)
from repro.incremental.engine import (
    ComponentEntry,
    DeltaOutcome,
    IncrementalFusion,
    canonical_claims,
)
from repro.incremental.journal import DeltaJournal, DeltaReceipt

__all__ = [
    "ClaimDelta",
    "ComponentEntry",
    "DeltaJournal",
    "DeltaOutcome",
    "DeltaReceipt",
    "IncrementalFusion",
    "canonical_claims",
    "delta_from_json_dict",
    "delta_to_json_dict",
    "load_delta",
    "save_delta",
]
