"""The delta model: a batch of added and retracted claims.

A :class:`ClaimDelta` is the unit of incremental update: scored
triples to add (new extractions that arrived since the last fusion)
plus triples to retract (facts withdrawn by their source, takedowns,
or corrections).  Retraction is triple-grained — it removes *every*
provenance of the triple, mirroring :meth:`TripleStore.remove` — while
additions carry full provenance and confidence.

Deltas have a JSON wire format so they can be shipped to the CLI
(``python -m repro pipeline --apply-delta deltas.json``)::

    {
      "label": "2026-08-06 crawl",
      "added": [
        {"subject": "country/au", "predicate": "capital",
         "object": "Canberra", "kind": "string",
         "source": "site-7", "extractor": "dom",
         "locator": "https://...", "confidence": 0.9}
      ],
      "retracted": [
        {"subject": "country/au", "predicate": "capital",
         "object": "Sydney", "kind": "string"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import DeltaError
from repro.rdf.triple import Provenance, ScoredTriple, Triple, Value, ValueKind

__all__ = [
    "ClaimDelta",
    "delta_from_json_dict",
    "delta_to_json_dict",
    "load_delta",
    "save_delta",
]


@dataclass(slots=True)
class ClaimDelta:
    """One batch of incremental updates.

    ``added`` are scored triples to ingest; ``retracted`` are triples
    to withdraw across all their provenances.  Within one delta,
    retractions apply before additions, so a delta can atomically
    replace a value (retract the old triple, add the new one).
    """

    added: list[ScoredTriple] = field(default_factory=list)
    retracted: list[Triple] = field(default_factory=list)
    label: str = ""

    def is_empty(self) -> bool:
        return not self.added and not self.retracted

    def validate(self) -> None:
        """Raise :class:`DeltaError` on structurally invalid content."""
        for scored in self.added:
            if not isinstance(scored, ScoredTriple):
                raise DeltaError(
                    f"delta additions must be ScoredTriple, got "
                    f"{type(scored).__name__}"
                )
        for triple in self.retracted:
            if not isinstance(triple, Triple):
                raise DeltaError(
                    f"delta retractions must be Triple, got "
                    f"{type(triple).__name__}"
                )

    def items(self) -> set[tuple[str, str]]:
        """The data items this delta touches (added or retracted)."""
        touched = {scored.triple.item for scored in self.added}
        touched.update(triple.item for triple in self.retracted)
        return touched


# ----------------------------------------------------------------------
# JSON wire format.


def _triple_to_json(triple: Triple) -> dict:
    return {
        "subject": triple.subject,
        "predicate": triple.predicate,
        "object": triple.obj.lexical,
        "kind": triple.obj.kind.value,
    }


def _triple_from_json(payload: dict) -> Triple:
    try:
        kind = ValueKind(payload.get("kind", "string"))
        return Triple(
            payload["subject"],
            payload["predicate"],
            Value(payload["object"], kind),
        )
    except (KeyError, ValueError) as exc:
        raise DeltaError(f"malformed delta triple: {payload!r}") from exc


def delta_to_json_dict(delta: ClaimDelta) -> dict:
    """The JSON-serializable form of a delta (``json.dumps``-ready)."""
    return {
        "label": delta.label,
        "added": [
            {
                **_triple_to_json(scored.triple),
                "source": scored.provenance.source_id,
                "extractor": scored.provenance.extractor_id,
                "locator": scored.provenance.locator,
                "confidence": scored.confidence,
            }
            for scored in delta.added
        ],
        "retracted": [
            _triple_to_json(triple) for triple in delta.retracted
        ],
    }


def delta_from_json_dict(payload: dict) -> ClaimDelta:
    """Parse the JSON wire format back into a :class:`ClaimDelta`."""
    if not isinstance(payload, dict):
        raise DeltaError(
            f"delta document must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    added = []
    for record in payload.get("added", ()):
        triple = _triple_from_json(record)
        try:
            provenance = Provenance(
                record["source"],
                record["extractor"],
                record.get("locator", ""),
            )
            scored = ScoredTriple(
                triple, provenance, float(record.get("confidence", 1.0))
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError(
                f"malformed delta addition: {record!r}"
            ) from exc
        added.append(scored)
    retracted = [
        _triple_from_json(record)
        for record in payload.get("retracted", ())
    ]
    return ClaimDelta(
        added=added,
        retracted=retracted,
        label=str(payload.get("label", "")),
    )


def load_delta(path: str) -> ClaimDelta:
    """Load a delta from a JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DeltaError(f"cannot read delta file {path}: {exc}") from exc
    return delta_from_json_dict(payload)


def save_delta(delta: ClaimDelta, path: str) -> None:
    """Write a delta as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(delta_to_json_dict(delta), handle, indent=2, sort_keys=True)
        handle.write("\n")
