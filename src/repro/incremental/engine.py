"""Dirty-component re-fusion over a journalled claim store.

Fusion couples an item to its sources and a source to its items, so a
delta that touches a handful of items can only change verdicts inside
the connected components of the claim graph it lands in (see
:mod:`repro.fusion.sharding`).  The :class:`IncrementalFusion` engine
exploits that:

1. the current claim corpus lives in a :class:`TripleStore`; each
   delta is journalled against a *copy* of it (retract, then add);
2. claims are canonicalized (sorted on a total key, then deduplicated
   through :meth:`ClaimSet.from_scored_triples`), so the fused output
   is a function of store *content*, not of journal history;
3. the canonical claim set is partitioned into connected components;
   each component carries a content digest, and a component whose
   digest matches the cached entry from the previous state is *clean*
   — its cached verdicts are reused verbatim.  Everything else is
   *dirty* and re-fused;
4. the merged result plus the new component cache are committed as a
   single state-object swap, so a crash anywhere before the commit
   leaves the engine fully pre-delta (the torn-state chaos contract).

Two estimation details make the reuse exact rather than approximate:

* extractor-correlation weights are global (extractors span
  components), so they are recomputed per delta and folded into claim
  confidences *before* partitioning — a shifted extractor weight
  changes every component digest and degenerates the delta to a full
  re-fusion, which is the correct price for a global parameter shift;
* source-correlation weights are component-local by construction
  (sources in different components share no items, and the estimator
  ignores pairs without common items), so the engine estimates them
  per component inside :meth:`_fuse_component` and still matches the
  global estimate bit for bit.

Byte-identity contract: with ``KnowledgeFusion(tolerance=0)``,
``apply_delta(delta)`` and a full ``fuse(canonical_claims(store))``
over the post-delta store produce results whose
:meth:`~repro.fusion.base.FusionResult.canonical_bytes` agree exactly.
At a nonzero tolerance, per-component early exit keeps engine-to-engine
determinism but may differ from a *global* fuse by up to the tolerance
(the standard sharding caveat).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.errors import DeltaError
from repro.fusion.base import ClaimSet, FusionResult
from repro.fusion.sharding import shard_claims
from repro.incremental.delta import ClaimDelta
from repro.incremental.journal import DeltaJournal, DeltaReceipt
from repro.rdf.store import TripleStore
from repro.rdf.triple import ScoredTriple

__all__ = [
    "ComponentEntry",
    "DeltaOutcome",
    "IncrementalFusion",
    "canonical_claims",
]


def _scored_sort_key(scored: ScoredTriple):
    triple = scored.triple
    provenance = scored.provenance
    return (
        triple.subject,
        triple.predicate,
        triple.obj.kind.value,
        triple.obj.lexical,
        provenance.source_id,
        provenance.extractor_id,
        provenance.locator,
        scored.confidence,
    )


def canonical_claims(store: TripleStore) -> ClaimSet:
    """The store's claims as a canonically-ordered :class:`ClaimSet`.

    Sorting on a total key before building the claim set makes the
    fused output a pure function of store *content*: two stores that
    hold the same claims — regardless of the add/remove history that
    produced them — yield byte-identical claim sets, hence
    byte-identical fusion (float accumulation order included).
    """
    return ClaimSet.from_scored_triples(
        sorted(store.claims(), key=_scored_sort_key)
    )


def _component_digest(shard: ClaimSet) -> str:
    """Content digest of one component's (reweighted) claims."""
    signature = sorted(
        (
            claim.item,
            claim.value,
            claim.lexical,
            claim.source_id,
            claim.extractor_id,
            claim.confidence,
        )
        for claim in shard
    )
    return hashlib.sha256(repr(signature).encode()).hexdigest()


@dataclass(slots=True)
class ComponentEntry:
    """Cached fusion of one connected component."""

    sources: frozenset[str]
    content_hash: str
    n_claims: int
    # The component's own fused sub-result, *before* the functional
    # constraint (which is applied on the merged result so a changed
    # functionality oracle never invalidates the cache).
    result: FusionResult


@dataclass(slots=True)
class _FusionState:
    """Everything one committed engine state consists of.

    ``apply_delta`` builds a complete replacement state off to the
    side and installs it with a single attribute rebind — the commit
    point of the no-torn-state contract.
    """

    store: TripleStore
    claims: ClaimSet  # canonical, pre-reweight
    working: ClaimSet  # post extractor reweight (== claims when off)
    extractor_weights: dict[str, float]
    entries: list[ComponentEntry]
    result: FusionResult
    sequence: int = 0


@dataclass(slots=True)
class DeltaOutcome:
    """Accounting of one applied delta."""

    sequence: int
    receipt: DeltaReceipt
    result: FusionResult
    components: int
    dirty_components: int
    reused_components: int
    # Items whose cached verdicts were carried over unfused.
    reused_verdicts: int
    # Claims inside the re-fused (dirty) components.
    refused_claims: int
    # True when every component was re-fused — the delta degenerated
    # to a full re-fusion (e.g. a global extractor-weight shift).
    degenerate: bool
    wall_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "receipt": self.receipt.to_json_dict(),
            "components": self.components,
            "dirty_components": self.dirty_components,
            "reused_components": self.reused_components,
            "reused_verdicts": self.reused_verdicts,
            "refused_claims": self.refused_claims,
            "degenerate": self.degenerate,
            "wall_seconds": self.wall_seconds,
            "fused_items": len(self.result.truths),
        }


@dataclass(slots=True)
class _ComputeStats:
    components: int = 0
    dirty_components: int = 0
    reused_components: int = 0
    reused_verdicts: int = 0
    refused_claims: int = 0


class IncrementalFusion:
    """Cached per-component fusion state plus the delta-apply loop.

    Built via :meth:`KnowledgeFusion.begin_incremental`; not intended
    to be constructed from scratch elsewhere (it drives the fusion
    object's private preparation helpers to guarantee byte-identity
    with full re-fusion).
    """

    def __init__(
        self,
        fusion,
        store: TripleStore,
        *,
        functional_refresh=None,
        metrics=None,
        fault_plan=None,
    ) -> None:
        self.fusion = fusion
        self.functional_refresh = functional_refresh
        self.metrics = metrics
        self.fault_plan = fault_plan
        self.receipts: list[DeltaReceipt] = []
        self._initial_store = store
        self._state: _FusionState | None = None

    # -- public state ---------------------------------------------------
    @property
    def store(self) -> TripleStore:
        return (
            self._state.store
            if self._state is not None
            else self._initial_store
        )

    @property
    def claims(self) -> ClaimSet:
        self._require_primed()
        return self._state.claims

    @property
    def result(self) -> FusionResult:
        self._require_primed()
        return self._state.result

    @property
    def sequence(self) -> int:
        return self._state.sequence if self._state is not None else -1

    @property
    def components(self) -> int:
        self._require_primed()
        return len(self._state.entries)

    def _require_primed(self) -> None:
        if self._state is None:
            raise DeltaError("incremental engine not primed yet")

    # -- lifecycle ------------------------------------------------------
    def prime(self) -> FusionResult:
        """Fuse the initial store in full, caching every component."""
        state, stats = self._compute(self._initial_store, {})
        self._state = state
        self._count("incremental_primes_total")
        self._gauge("incremental_components", stats.components)
        return state.result

    def apply_delta(self, delta: ClaimDelta) -> DeltaOutcome:
        """Journal one delta and re-fuse only its dirty components.

        All mutation is staged against copies; the engine's visible
        state changes in a single commit at the end, so a crash (or an
        injected fault) mid-apply leaves the store *and* the cached
        result exactly pre-delta.  Fault scopes, in order:
        ``stage:incremental-journal`` (before any staging),
        ``stage:incremental-fusion`` (after journalling, before
        re-fusion), ``stage:incremental-commit`` (after the commit —
        a crash there leaves fully post-delta state).
        """
        self._require_primed()
        started = time.perf_counter()
        injected = self._fault("stage:incremental-journal")

        staged = self._state.store.copy()
        receipt = DeltaJournal(staged).apply(delta)
        receipt.sequence = self._state.sequence + 1

        injected += self._fault("stage:incremental-fusion")
        prior = {entry.sources: entry for entry in self._state.entries}
        state, stats = self._compute(staged, prior)
        state.sequence = self._state.sequence + 1

        # -- commit: one attribute rebind -------------------------------
        self._state = state
        self.receipts.append(receipt)

        wall = time.perf_counter() - started + injected
        outcome = DeltaOutcome(
            sequence=state.sequence,
            receipt=receipt,
            result=state.result,
            components=stats.components,
            dirty_components=stats.dirty_components,
            reused_components=stats.reused_components,
            reused_verdicts=stats.reused_verdicts,
            refused_claims=stats.refused_claims,
            degenerate=stats.dirty_components == stats.components,
            wall_seconds=wall,
        )
        self._publish(outcome)
        self._fault("stage:incremental-commit")
        return outcome

    # -- internals ------------------------------------------------------
    def _compute(
        self,
        store: TripleStore,
        prior: dict[frozenset[str], ComponentEntry],
    ) -> tuple[_FusionState, _ComputeStats]:
        """Build a complete replacement state from a store's content."""
        fusion = self.fusion
        claims = canonical_claims(store)
        if len(claims) == 0:
            raise DeltaError(
                "claim store is empty; refusing to fuse nothing "
                "(did the delta retract every claim?)"
            )
        extractor_weights: dict[str, float] = {}
        working = claims
        if fusion.use_extractor_correlations:
            extractor_weights = fusion._extractor_weights(claims)
            working = fusion._apply_extractor_weights(
                claims, extractor_weights
            )

        stats = _ComputeStats()
        entries: list[ComponentEntry] = []
        for shard in shard_claims(working):
            sources = frozenset(shard.sources())
            digest = _component_digest(shard)
            cached = prior.get(sources)
            stats.components += 1
            if cached is not None and cached.content_hash == digest:
                entries.append(cached)
                stats.reused_components += 1
                stats.reused_verdicts += len(cached.result.truths)
            else:
                entries.append(
                    ComponentEntry(
                        sources=sources,
                        content_hash=digest,
                        n_claims=len(shard),
                        result=self._fuse_component(shard),
                    )
                )
                stats.dirty_components += 1
                stats.refused_claims += len(shard)

        merged = self._merge(entries)
        if self.functional_refresh is not None:
            fusion.functional_of = self.functional_refresh(claims)
        if fusion.functional_of is not None:
            fusion._constrain_functional(working, merged)
        return (
            _FusionState(
                store=store,
                claims=claims,
                working=working,
                extractor_weights=extractor_weights,
                entries=entries,
                result=merged,
            ),
            stats,
        )

    def _fuse_component(self, shard: ClaimSet) -> FusionResult:
        """Fuse one component exactly as the global run would.

        Source-correlation weights are estimated on the shard alone —
        identical to the global estimate restricted to the shard,
        because no dependence pair crosses a component boundary.
        """
        fusion = self.fusion
        source_weights = (
            fusion._source_weights(shard)
            if fusion.use_source_correlations
            else None
        )
        return fusion._base_method(source_weights).fuse(shard)

    def _merge(self, entries: list[ComponentEntry]) -> FusionResult:
        """Disjoint-union merge, mirroring ``fuse_sharded``."""
        merged = FusionResult(self.fusion.name)
        converged: list[int | None] = []
        for entry in entries:
            result = entry.result
            for item, values in result.truths.items():
                # Copy the sets: the merged result is handed to
                # callers (and mutated by the functional constraint's
                # rebinds), while the entry stays cached.
                merged.truths[item] = set(values)
            merged.belief.update(result.belief)
            merged.source_quality.update(result.source_quality)
            merged.iterations = max(merged.iterations, result.iterations)
            converged.append(result.converged_at)
        if converged and all(round_ is not None for round_ in converged):
            merged.converged_at = max(converged)  # type: ignore[type-var]
        return merged

    # -- plumbing -------------------------------------------------------
    def _fault(self, scope: str) -> float:
        """Fire an injected fault point; returns injected slow seconds."""
        if self.fault_plan is None:
            return 0.0
        return self.fault_plan.task_delay(scope, 0, 0)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _publish(self, outcome: DeltaOutcome) -> None:
        self._count("incremental_deltas_total")
        self._count(
            "incremental_dirty_components", outcome.dirty_components
        )
        self._count("incremental_reused_verdicts", outcome.reused_verdicts)
        self._count("incremental_claims_added_total", outcome.receipt.added)
        self._count(
            "incremental_claims_removed_total",
            outcome.receipt.removed_claims,
        )
        if outcome.degenerate:
            self._count("incremental_degenerate_total")
        self._gauge("incremental_components", outcome.components)
        if self.metrics is not None:
            self.metrics.histogram("incremental_delta_seconds").observe(
                outcome.wall_seconds
            )
