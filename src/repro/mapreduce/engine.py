"""A local MapReduce engine.

The paper scales knowledge fusion "by using a MapReduce based
framework" (after Dong et al. [13]) and plans a distributed inference
architecture "inherent in the MapReduce architectures" (Sec. 3.1).
This engine reproduces the programming model on one machine: mappers
emit key/value pairs, an optional combiner pre-aggregates per
partition, a hash partitioner shuffles, and reducers fold each key's
values.  Jobs can be chained, which is how the iterative fusion
algorithms run (one job per EM round).

The engine is deliberately deterministic: partitions are processed in
order and reducer input preserves emission order, so fused results are
reproducible regardless of partition count.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, TypeVar

from repro.errors import ReproError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

Mapper = Callable[[Any], Iterable[tuple[K, V]]]
Reducer = Callable[[K, list[V]], Iterable[Any]]
Combiner = Callable[[K, list[V]], Iterable[V]]


@dataclass(slots=True)
class JobStats:
    """Counters of one job execution."""

    input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    reduce_groups: int = 0
    output_records: int = 0


class MapReduceJob(Generic[K, V]):
    """One map → (combine) → shuffle → reduce job.

    Parameters
    ----------
    mapper:
        ``record -> iterable of (key, value)``.
    reducer:
        ``(key, [values]) -> iterable of output records``.
    combiner:
        Optional ``(key, [values]) -> iterable of values`` run per
        partition before the shuffle (classic associative
        pre-aggregation).
    partitions:
        Number of map partitions; affects only grouping of combiner
        input, never results.
    """

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        *,
        combiner: Combiner | None = None,
        partitions: int = 4,
    ) -> None:
        if partitions < 1:
            raise ReproError("partitions must be >= 1")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.partitions = partitions
        self.stats = JobStats()

    # ------------------------------------------------------------------
    def run(self, records: Iterable[Any]) -> list[Any]:
        """Execute the job and return the collected reducer output."""
        self.stats = JobStats()
        partitions = self._split(records)

        # Map (+ optional combine) per partition.
        shuffled: dict[K, list[V]] = {}
        for partition in partitions:
            emitted: dict[K, list[V]] = {}
            for record in partition:
                self.stats.input_records += 1
                for key, value in self.mapper(record):
                    emitted.setdefault(key, []).append(value)
                    self.stats.map_output_records += 1
            if self.combiner is not None:
                combined: dict[K, list[V]] = {}
                for key, values in emitted.items():
                    combined[key] = list(self.combiner(key, values))
                    self.stats.combine_output_records += len(combined[key])
                emitted = combined
            for key, values in emitted.items():
                shuffled.setdefault(key, []).extend(values)

        # Reduce in deterministic key order.
        output: list[Any] = []
        for key in sorted(shuffled, key=repr):
            self.stats.reduce_groups += 1
            output.extend(self.reducer(key, shuffled[key]))
        self.stats.output_records = len(output)
        return output

    def _split(self, records: Iterable[Any]) -> list[list[Any]]:
        partitions: list[list[Any]] = [[] for _ in range(self.partitions)]
        for index, record in enumerate(records):
            partitions[index % self.partitions].append(record)
        return partitions


@dataclass(slots=True)
class Pipeline:
    """A chain of jobs: each job's output feeds the next job's mapper."""

    jobs: list[MapReduceJob] = field(default_factory=list)

    def add(self, job: MapReduceJob) -> "Pipeline":
        self.jobs.append(job)
        return self

    def run(self, records: Iterable[Any]) -> list[Any]:
        current: Iterable[Any] = records
        output: list[Any] = list(current)
        for job in self.jobs:
            output = job.run(output)
        return output


def word_count(documents: Iterable[str]) -> dict[str, int]:
    """The canonical demo job; doubles as an engine self-test."""
    job: MapReduceJob[str, int] = MapReduceJob(
        mapper=lambda doc: [(word.lower(), 1) for word in doc.split()],
        reducer=lambda word, counts: [(word, sum(counts))],
        combiner=lambda word, counts: [sum(counts)],
    )
    return dict(job.run(documents))
