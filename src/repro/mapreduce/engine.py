"""A local MapReduce engine with pluggable executors.

The paper scales knowledge fusion "by using a MapReduce based
framework" (after Dong et al. [13]) and plans a distributed inference
architecture "inherent in the MapReduce architectures" (Sec. 3.1).
This engine reproduces the programming model on one machine: mappers
emit key/value pairs, an optional combiner pre-aggregates per
partition, a hash partitioner shuffles, and reducers fold each key's
values.  Jobs can be chained, which is how the iterative fusion
algorithms run (one job per EM round).

Two executors are available:

* ``"serial"`` (default) — the original in-process loop;
* ``"process"`` — map partitions and reduce key-groups are dispatched
  in chunks to a ``concurrent.futures.ProcessPoolExecutor``.  Job
  functions must be picklable (module-level functions or
  ``functools.partial`` over them — see :mod:`repro.mapreduce.jobs`);
  per-worker counters are merged back into :class:`JobStats`.

The engine is deliberately deterministic under *both* executors:
partition results are merged in partition order and reducer input
preserves emission order, so the shuffle — and therefore the output —
is byte-identical to a serial run regardless of worker count or
partitioning.

Fault tolerance: passing a :class:`RetryPolicy` (or a
:class:`repro.faults.FaultPlan`) switches a job onto a guarded dispatch
path where every map partition and reduce chunk is an individually
retried task — deterministic exponential backoff (injectable ``sleep``
and ``clock``, so tests never wait), per-task deadlines checked against
measured duration, automatic recreation of a broken worker pool, and
optional re-splitting of a poison partition down to single records to
isolate (and drop-count) the offending one.  A task that fails every
allowed attempt raises
:class:`~repro.errors.RetryExhaustedError`; retries of a
deterministic task cannot change its result, so output stays
byte-identical to an unfaulted run whenever the job completes.
"""

from __future__ import annotations

import atexit
import os
import pickle
import random
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, TypeVar

from repro.errors import ReproError, RetryExhaustedError, StageTimeoutError
from repro.faults import FaultPlan

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

Mapper = Callable[[Any], Iterable[tuple[K, V]]]
Reducer = Callable[[K, list[V]], Iterable[Any]]
Combiner = Callable[[K, list[V]], Iterable[V]]

EXECUTORS = ("serial", "process")

# Process pools are expensive to start, and iterative jobs (ACCU runs
# two jobs per EM round) would otherwise pay that cost dozens of times;
# pools are kept per worker count and reused across runs.
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        # A worker that died (segfault, OOM kill, os._exit) breaks the
        # executor permanently; without this check the broken pool
        # would poison every later job in the process.
        pool.shutdown(wait=False, cancel_futures=True)
        _POOLS.pop(workers, None)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    """Drop (and shut down) the shared pool for a worker count."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every shared worker pool (safe to call repeatedly)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


@dataclass(slots=True)
class JobStats:
    """Counters of one job execution (merged across workers).

    The retry counters (``attempts`` onward) are populated only on the
    guarded dispatch path — a job run without a retry policy or fault
    plan leaves them at zero.
    """

    input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    reduce_groups: int = 0
    output_records: int = 0
    # Guarded-path counters:
    attempts: int = 0
    retries: int = 0
    timed_out_tasks: int = 0
    poisoned_records: int = 0


@dataclass(slots=True)
class RetryPolicy:
    """How a guarded job retries failed map/reduce tasks.

    ``backoff(n)`` is a deterministic exponential:
    ``backoff_base * 2**n`` seconds before the (n+2)-th attempt.  Both
    ``sleep`` and ``clock`` are injectable so chaos tests measure and
    wait in fake time.  ``timeout`` bounds one task's measured duration
    (real wall time plus any injected slow-call seconds); a breach
    counts in ``JobStats.timed_out_tasks`` and is retried like a crash.
    With ``resplit_poison`` a partition that fails every attempt is
    re-split into single-record tasks: records that still fail are
    dropped and counted in ``JobStats.poisoned_records`` instead of
    sinking the job (reduce chunks re-split into single key-groups the
    same way).

    ``jitter`` (default 0: off, byte-identical to the plain
    exponential) spreads each delay uniformly over
    ``[delay*(1-jitter), delay*(1+jitter)]`` so concurrent consumers
    sharing a policy shape do not retry in lockstep.  The spread is a
    *pure function* of ``(jitter_seed, retry_number)`` — not of call
    order — so a schedule is exactly reproducible per seed; pass
    ``jitter_rng`` (``retry_number -> [0, 1)``) to inject a different
    deterministic source.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    timeout: float | None = None
    resplit_poison: bool = False
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.perf_counter
    jitter: float = 0.0
    jitter_seed: int = 0
    jitter_rng: Callable[[int], float] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ReproError("backoff_base must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError("timeout must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError("jitter must lie in [0, 1)")

    def backoff(self, retry_number: int) -> float:
        """Seconds to wait before retry ``retry_number`` (0-based)."""
        delay = self.backoff_base * (2.0 ** retry_number)
        if self.jitter > 0.0:
            if self.jitter_rng is not None:
                unit = self.jitter_rng(retry_number)
            else:
                # Distinct int per (seed, retry): pure function of both,
                # so call order never shifts the schedule.
                unit = random.Random(
                    self.jitter_seed * 2_654_435_761 + retry_number
                ).random()
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay


def _map_partition(
    mapper: Mapper,
    combiner: Combiner | None,
    partition: list[Any],
) -> tuple[list[tuple[Any, list[Any]]], int, int, int]:
    """Map (+ optionally combine) one partition.

    Runs in a worker process under the ``"process"`` executor and
    inline under ``"serial"`` — one code path, identical semantics.
    Returns the emitted groups in first-emission order plus the
    partition's counter deltas.
    """
    emitted: dict[Any, list[Any]] = {}
    input_records = 0
    map_output = 0
    for record in partition:
        input_records += 1
        for key, value in mapper(record):
            emitted.setdefault(key, []).append(value)
            map_output += 1
    combine_output = 0
    if combiner is not None:
        combined: dict[Any, list[Any]] = {}
        for key, values in emitted.items():
            combined[key] = list(combiner(key, values))
            combine_output += len(combined[key])
        emitted = combined
    return list(emitted.items()), input_records, map_output, combine_output


def _reduce_chunk(
    reducer: Reducer, groups: list[tuple[Any, list[Any]]]
) -> list[list[Any]]:
    """Reduce a chunk of key-groups; one output list per group."""
    return [list(reducer(key, values)) for key, values in groups]


class MapReduceJob(Generic[K, V]):
    """One map → (combine) → shuffle → reduce job.

    Parameters
    ----------
    mapper:
        ``record -> iterable of (key, value)``.
    reducer:
        ``(key, [values]) -> iterable of output records``.
    combiner:
        Optional ``(key, [values]) -> iterable of values`` run per
        partition before the shuffle (classic associative
        pre-aggregation).
    partitions:
        Number of map partitions; affects only grouping of combiner
        input and the granularity of parallel map dispatch, never
        results.
    executor:
        ``"serial"`` or ``"process"``.  The process executor requires
        picklable job functions and records.
    max_workers:
        Worker-process count for the process executor (default: the
        machine's CPU count).
    retry:
        Optional :class:`RetryPolicy`.  Setting it (or ``fault_plan``)
        moves the job onto the guarded dispatch path: per-task retries
        with deterministic backoff, deadline checks, broken-pool
        recovery and poison isolation.  Task failures then surface as
        :class:`~repro.errors.RetryExhaustedError` once the attempt
        budget is spent (``retry=None`` with a fault plan means a
        budget of one attempt — "retries disabled").
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` hooked into the map
        and reduce task wrappers (scopes ``"map"``/``"reduce"``,
        indexed by partition/chunk) for deterministic chaos testing.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  When set,
        ``run()`` publishes every :class:`JobStats` counter as a
        ``mapreduce_*`` metric (even when the job raises) and the
        guarded path counts dispatch waves per scope
        (``mapreduce_waves_total``) and times them
        (``mapreduce_wave_seconds``).
    """

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        *,
        combiner: Combiner | None = None,
        partitions: int = 4,
        executor: str = "serial",
        max_workers: int | None = None,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        metrics=None,
    ) -> None:
        if partitions < 1:
            raise ReproError("partitions must be >= 1")
        if executor not in EXECUTORS:
            raise ReproError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.partitions = partitions
        self.executor = executor
        self.max_workers = max_workers
        self.retry = retry
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.stats = JobStats()
        self._active_pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    def run(self, records: Iterable[Any]) -> list[Any]:
        """Execute the job and return the collected reducer output."""
        self.stats = JobStats()
        partitions = self._split(records)
        parallel = self.executor == "process"
        guarded = self.retry is not None or self.fault_plan is not None
        pool = None
        if parallel:
            self._check_picklable()
            pool = _shared_pool(self._worker_count())
        self._active_pool = pool
        try:
            return self._execute(partitions, guarded)
        finally:
            self._active_pool = None
            self._publish_stats()

    def _publish_stats(self) -> None:
        """Fold this run's ``JobStats`` into the metrics registry.

        Runs even when the job raised, so a failed run's attempt and
        poison counters are still visible.
        """
        if self.metrics is None:
            return
        stats = self.stats
        metrics = self.metrics
        metrics.counter("mapreduce_jobs_total").inc()
        metrics.counter(
            "mapreduce_input_records_total"
        ).inc(stats.input_records)
        metrics.counter(
            "mapreduce_map_output_records_total"
        ).inc(stats.map_output_records)
        metrics.counter(
            "mapreduce_combine_output_records_total"
        ).inc(stats.combine_output_records)
        metrics.counter(
            "mapreduce_reduce_groups_total"
        ).inc(stats.reduce_groups)
        metrics.counter(
            "mapreduce_output_records_total"
        ).inc(stats.output_records)
        metrics.counter("mapreduce_attempts_total").inc(stats.attempts)
        metrics.counter("mapreduce_retries_total").inc(stats.retries)
        metrics.counter(
            "mapreduce_timed_out_tasks_total"
        ).inc(stats.timed_out_tasks)
        metrics.counter(
            "mapreduce_poisoned_records_total"
        ).inc(stats.poisoned_records)

    def _execute(
        self, partitions: list[list[Any]], guarded: bool
    ) -> list[Any]:
        pool = self._active_pool
        # Map (+ optional combine) per partition; partition results are
        # merged in partition order, making the shuffle independent of
        # worker scheduling.
        if guarded:
            partition_results = self._run_guarded(
                _GuardedTask(
                    _MapTask(self.mapper, self.combiner),
                    "map",
                    self.fault_plan,
                ),
                partitions,
                scope="map",
                resplit=_merge_partition_results,
            )
        elif pool is not None:
            chunksize = max(1, len(partitions) // (self._worker_count() * 4))
            partition_results = list(
                pool.map(
                    _MapTask(self.mapper, self.combiner),
                    partitions,
                    chunksize=chunksize,
                )
            )
        else:
            partition_results = [
                _map_partition(self.mapper, self.combiner, partition)
                for partition in partitions
            ]

        shuffled: dict[K, list[V]] = {}
        for result in partition_results:
            if result is None:
                continue  # fully-poisoned partition dropped by resplit
            groups, input_records, map_output, combine_output = result
            self.stats.input_records += input_records
            self.stats.map_output_records += map_output
            self.stats.combine_output_records += combine_output
            for key, values in groups:
                shuffled.setdefault(key, []).extend(values)

        # Reduce in deterministic key order.
        keys = sorted(shuffled, key=repr)
        self.stats.reduce_groups = len(keys)
        output: list[Any] = []
        if guarded and keys:
            # Both executors reduce in chunks on the guarded path so a
            # retried task has the same granularity either way.
            group_chunks = self._chunk_groups(keys, shuffled)
            chunk_outputs = self._run_guarded(
                _GuardedTask(
                    _ReduceTask(self.reducer), "reduce", self.fault_plan
                ),
                group_chunks,
                scope="reduce",
                resplit=_merge_chunk_outputs,
            )
            for chunk_output in chunk_outputs:
                if chunk_output is None:
                    continue
                for group_output in chunk_output:
                    output.extend(group_output)
        elif self._active_pool is not None and keys:
            group_chunks = self._chunk_groups(keys, shuffled)
            for chunk_output in self._active_pool.map(
                _ReduceTask(self.reducer), group_chunks
            ):
                for group_output in chunk_output:
                    output.extend(group_output)
        else:
            for key in keys:
                output.extend(self.reducer(key, shuffled[key]))
        self.stats.output_records = len(output)
        return output

    # ------------------------------------------------------------------
    # Guarded dispatch: retries, deadlines, broken-pool recovery and
    # poison isolation.

    def _run_guarded(
        self,
        task: "_GuardedTask",
        payloads: list[list[Any]],
        *,
        scope: str,
        resplit: Callable[[list[Any]], Any] | None,
        allow_resplit: bool = True,
    ) -> list[Any]:
        """Run one payload per task with the effective retry policy.

        Returns results aligned with ``payloads``; a payload whose
        every record/group is poison yields ``None`` (dropped).  All
        tasks start together, so pending tasks share one attempt
        counter and one deterministic backoff schedule.
        """
        policy = self.retry or _SINGLE_ATTEMPT
        results: list[Any] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        attempt = 0
        while pending:
            wave_started = time.perf_counter()
            if self.metrics is not None:
                self.metrics.counter(
                    "mapreduce_waves_total", scope=scope
                ).inc()
            futures = {}
            if self._active_pool is not None:
                for index in pending:
                    futures[index] = self._submit(
                        task, index, attempt, payloads[index]
                    )
            failed: list[tuple[int, Exception]] = []
            for index in pending:
                self.stats.attempts += 1
                try:
                    if self._active_pool is not None:
                        result, seconds = futures[index].result()
                    else:
                        result, seconds = task(
                            (index, attempt, payloads[index])
                        )
                    if (
                        policy.timeout is not None
                        and seconds > policy.timeout
                    ):
                        self.stats.timed_out_tasks += 1
                        raise StageTimeoutError(
                            f"{scope} task {index} ran {seconds:.3f}s, "
                            f"deadline {policy.timeout}s"
                        )
                    results[index] = result
                except BrokenProcessPool as exc:
                    self._refresh_pool()
                    failed.append((index, exc))
                except Exception as exc:
                    failed.append((index, exc))
            if self.metrics is not None:
                self.metrics.histogram(
                    "mapreduce_wave_seconds", scope=scope
                ).observe(time.perf_counter() - wave_started)
            if not failed:
                break
            attempt += 1
            if attempt >= policy.max_attempts:
                for index, exc in failed:
                    if (
                        allow_resplit
                        and resplit is not None
                        and policy.resplit_poison
                        and len(payloads[index]) > 1
                    ):
                        results[index] = self._isolate_poison(
                            task, payloads[index], scope, resplit
                        )
                    else:
                        raise RetryExhaustedError(
                            f"{scope} task {index} failed after "
                            f"{attempt} attempt(s): {exc!r}"
                        ) from exc
                break
            self.stats.retries += len(failed)
            policy.sleep(policy.backoff(attempt - 1))
            pending = [index for index, _exc in failed]
        return results

    def _isolate_poison(
        self,
        task: "_GuardedTask",
        payload: list[Any],
        scope: str,
        resplit: Callable[[list[Any]], Any],
    ):
        """Re-split an exhausted payload into single-element tasks.

        Elements that still fail every attempt are dropped and counted
        in ``JobStats.poisoned_records``; survivors are merged back in
        their original order, so output order matches an unfaulted run
        minus the poison.  Returns None when nothing survived.
        """
        survivors: list[Any] = []
        for element in payload:
            try:
                sub_results = self._run_guarded(
                    task,
                    [[element]],
                    scope=f"{scope}.resplit",
                    resplit=None,
                    allow_resplit=False,
                )
                survivors.append(sub_results[0])
            except RetryExhaustedError:
                self.stats.poisoned_records += 1
        if not survivors:
            return None
        return resplit(survivors)

    def _submit(self, task, index: int, attempt: int, payload):
        """Submit one guarded task, recreating a broken pool on demand."""
        try:
            return self._active_pool.submit(
                task, (index, attempt, payload)
            )
        except (BrokenProcessPool, RuntimeError):
            # Submitting to a pool that broke (or was shut down) mid-run
            # raises immediately; refresh once and resubmit.
            self._refresh_pool()
            return self._active_pool.submit(
                task, (index, attempt, payload)
            )

    def _refresh_pool(self) -> None:
        if self._active_pool is None:
            return
        _discard_pool(self._worker_count())
        self._active_pool = _shared_pool(self._worker_count())

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _check_picklable(self) -> None:
        try:
            pickle.dumps((self.mapper, self.reducer, self.combiner))
        except Exception as exc:
            raise ReproError(
                "the process executor needs picklable job functions "
                "(module-level functions or functools.partial over them); "
                f"pickling failed with: {exc!r}"
            ) from exc

    def _chunk_groups(
        self, keys: list[K], shuffled: dict[K, list[V]]
    ) -> list[list[tuple[K, list[V]]]]:
        """Key-groups batched into roughly 4 chunks per worker.

        Chunking amortizes per-task pickling overhead while keeping
        enough tasks in flight to balance skewed groups.
        """
        target_chunks = self._worker_count() * 4
        chunk_size = max(1, -(-len(keys) // target_chunks))
        return [
            [(key, shuffled[key]) for key in keys[start : start + chunk_size]]
            for start in range(0, len(keys), chunk_size)
        ]

    def _split(self, records: Iterable[Any]) -> list[list[Any]]:
        partitions: list[list[Any]] = [[] for _ in range(self.partitions)]
        for index, record in enumerate(records):
            partitions[index % self.partitions].append(record)
        return partitions


class _MapTask:
    """Picklable callable binding a mapper/combiner for pool dispatch."""

    __slots__ = ("mapper", "combiner")

    def __init__(self, mapper: Mapper, combiner: Combiner | None) -> None:
        self.mapper = mapper
        self.combiner = combiner

    def __call__(self, partition: list[Any]):
        return _map_partition(self.mapper, self.combiner, partition)


class _ReduceTask:
    """Picklable callable binding a reducer for pool dispatch."""

    __slots__ = ("reducer",)

    def __init__(self, reducer: Reducer) -> None:
        self.reducer = reducer

    def __call__(self, groups: list[tuple[Any, list[Any]]]):
        return _reduce_chunk(self.reducer, groups)


class _GuardedTask:
    """Guarded-path task wrapper: fault hooks plus duration measurement.

    Called with ``(index, attempt, payload)`` so the fault plan can
    address tasks deterministically; returns ``(result, seconds)``
    where seconds include any injected slow-call time.  Picklable for
    the process executor (the plan rides along read-only).
    """

    __slots__ = ("task", "scope", "plan")

    def __init__(
        self, task, scope: str, plan: FaultPlan | None
    ) -> None:
        self.task = task
        self.scope = scope
        self.plan = plan

    def __call__(self, spec: tuple[int, int, Any]):
        index, attempt, payload = spec
        extra = 0.0
        if self.plan is not None:
            extra = self.plan.task_delay(self.scope, index, attempt)
        started = time.perf_counter()
        result = self.task(payload)
        return result, time.perf_counter() - started + extra


# "Retries disabled": the guarded path with a one-attempt budget, used
# when a fault plan is set without a retry policy.
_SINGLE_ATTEMPT = RetryPolicy(max_attempts=1, backoff_base=0.0)


def _merge_partition_results(survivors: list[Any]):
    """Merge single-record map results back into one partition result.

    Groups are concatenated per key in first-emission order (the same
    order ``_map_partition`` would have produced for the surviving
    records) and counters are summed.
    """
    merged: dict[Any, list[Any]] = {}
    input_records = map_output = combine_output = 0
    for groups, sub_inputs, sub_map, sub_combine in survivors:
        input_records += sub_inputs
        map_output += sub_map
        combine_output += sub_combine
        for key, values in groups:
            merged.setdefault(key, []).extend(values)
    return list(merged.items()), input_records, map_output, combine_output


def _merge_chunk_outputs(survivors: list[Any]):
    """Merge single-group reduce results back into one chunk output."""
    return [
        group_output
        for chunk_output in survivors
        for group_output in chunk_output
    ]


@dataclass(slots=True)
class Pipeline:
    """A chain of jobs: each job's output feeds the next job's mapper."""

    jobs: list[MapReduceJob] = field(default_factory=list)

    def add(self, job: MapReduceJob) -> "Pipeline":
        self.jobs.append(job)
        return self

    def run(self, records: Iterable[Any]) -> list[Any]:
        current: Iterable[Any] = records
        output: list[Any] = list(current)
        for job in self.jobs:
            output = job.run(output)
        return output


def _wc_mapper(doc: str) -> list[tuple[str, int]]:
    return [(word.lower(), 1) for word in doc.split()]


def _wc_reducer(word: str, counts: list[int]) -> list[tuple[str, int]]:
    return [(word, sum(counts))]


def _wc_combiner(_word: str, counts: list[int]) -> list[int]:
    return [sum(counts)]


def word_count(
    documents: Iterable[str],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
) -> dict[str, int]:
    """The canonical demo job; doubles as an engine self-test."""
    job: MapReduceJob[str, int] = MapReduceJob(
        mapper=_wc_mapper,
        reducer=_wc_reducer,
        combiner=_wc_combiner,
        executor=executor,
        max_workers=max_workers,
    )
    return dict(job.run(documents))
