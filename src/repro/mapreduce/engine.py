"""A local MapReduce engine with pluggable executors.

The paper scales knowledge fusion "by using a MapReduce based
framework" (after Dong et al. [13]) and plans a distributed inference
architecture "inherent in the MapReduce architectures" (Sec. 3.1).
This engine reproduces the programming model on one machine: mappers
emit key/value pairs, an optional combiner pre-aggregates per
partition, a hash partitioner shuffles, and reducers fold each key's
values.  Jobs can be chained, which is how the iterative fusion
algorithms run (one job per EM round).

Two executors are available:

* ``"serial"`` (default) — the original in-process loop;
* ``"process"`` — map partitions and reduce key-groups are dispatched
  in chunks to a ``concurrent.futures.ProcessPoolExecutor``.  Job
  functions must be picklable (module-level functions or
  ``functools.partial`` over them — see :mod:`repro.mapreduce.jobs`);
  per-worker counters are merged back into :class:`JobStats`.

The engine is deliberately deterministic under *both* executors:
partition results are merged in partition order and reducer input
preserves emission order, so the shuffle — and therefore the output —
is byte-identical to a serial run regardless of worker count or
partitioning.
"""

from __future__ import annotations

import atexit
import os
import pickle
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, TypeVar

from repro.errors import ReproError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

Mapper = Callable[[Any], Iterable[tuple[K, V]]]
Reducer = Callable[[K, list[V]], Iterable[Any]]
Combiner = Callable[[K, list[V]], Iterable[V]]

EXECUTORS = ("serial", "process")

# Process pools are expensive to start, and iterative jobs (ACCU runs
# two jobs per EM round) would otherwise pay that cost dozens of times;
# pools are kept per worker count and reused across runs.
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every shared worker pool (safe to call repeatedly)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


@dataclass(slots=True)
class JobStats:
    """Counters of one job execution (merged across workers)."""

    input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    reduce_groups: int = 0
    output_records: int = 0


def _map_partition(
    mapper: Mapper,
    combiner: Combiner | None,
    partition: list[Any],
) -> tuple[list[tuple[Any, list[Any]]], int, int, int]:
    """Map (+ optionally combine) one partition.

    Runs in a worker process under the ``"process"`` executor and
    inline under ``"serial"`` — one code path, identical semantics.
    Returns the emitted groups in first-emission order plus the
    partition's counter deltas.
    """
    emitted: dict[Any, list[Any]] = {}
    input_records = 0
    map_output = 0
    for record in partition:
        input_records += 1
        for key, value in mapper(record):
            emitted.setdefault(key, []).append(value)
            map_output += 1
    combine_output = 0
    if combiner is not None:
        combined: dict[Any, list[Any]] = {}
        for key, values in emitted.items():
            combined[key] = list(combiner(key, values))
            combine_output += len(combined[key])
        emitted = combined
    return list(emitted.items()), input_records, map_output, combine_output


def _reduce_chunk(
    reducer: Reducer, groups: list[tuple[Any, list[Any]]]
) -> list[list[Any]]:
    """Reduce a chunk of key-groups; one output list per group."""
    return [list(reducer(key, values)) for key, values in groups]


class MapReduceJob(Generic[K, V]):
    """One map → (combine) → shuffle → reduce job.

    Parameters
    ----------
    mapper:
        ``record -> iterable of (key, value)``.
    reducer:
        ``(key, [values]) -> iterable of output records``.
    combiner:
        Optional ``(key, [values]) -> iterable of values`` run per
        partition before the shuffle (classic associative
        pre-aggregation).
    partitions:
        Number of map partitions; affects only grouping of combiner
        input and the granularity of parallel map dispatch, never
        results.
    executor:
        ``"serial"`` or ``"process"``.  The process executor requires
        picklable job functions and records.
    max_workers:
        Worker-process count for the process executor (default: the
        machine's CPU count).
    """

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        *,
        combiner: Combiner | None = None,
        partitions: int = 4,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> None:
        if partitions < 1:
            raise ReproError("partitions must be >= 1")
        if executor not in EXECUTORS:
            raise ReproError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.partitions = partitions
        self.executor = executor
        self.max_workers = max_workers
        self.stats = JobStats()

    # ------------------------------------------------------------------
    def run(self, records: Iterable[Any]) -> list[Any]:
        """Execute the job and return the collected reducer output."""
        self.stats = JobStats()
        partitions = self._split(records)
        parallel = self.executor == "process"
        if parallel:
            self._check_picklable()
            pool = _shared_pool(self._worker_count())

        # Map (+ optional combine) per partition; partition results are
        # merged in partition order, making the shuffle independent of
        # worker scheduling.
        if parallel:
            chunksize = max(1, len(partitions) // (self._worker_count() * 4))
            partition_results = list(
                pool.map(
                    _MapTask(self.mapper, self.combiner),
                    partitions,
                    chunksize=chunksize,
                )
            )
        else:
            partition_results = [
                _map_partition(self.mapper, self.combiner, partition)
                for partition in partitions
            ]

        shuffled: dict[K, list[V]] = {}
        for groups, input_records, map_output, combine_output in (
            partition_results
        ):
            self.stats.input_records += input_records
            self.stats.map_output_records += map_output
            self.stats.combine_output_records += combine_output
            for key, values in groups:
                shuffled.setdefault(key, []).extend(values)

        # Reduce in deterministic key order.
        keys = sorted(shuffled, key=repr)
        self.stats.reduce_groups = len(keys)
        output: list[Any] = []
        if parallel and keys:
            group_chunks = self._chunk_groups(keys, shuffled)
            for chunk_output in pool.map(
                _ReduceTask(self.reducer), group_chunks
            ):
                for group_output in chunk_output:
                    output.extend(group_output)
        else:
            for key in keys:
                output.extend(self.reducer(key, shuffled[key]))
        self.stats.output_records = len(output)
        return output

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _check_picklable(self) -> None:
        try:
            pickle.dumps((self.mapper, self.reducer, self.combiner))
        except Exception as exc:
            raise ReproError(
                "the process executor needs picklable job functions "
                "(module-level functions or functools.partial over them); "
                f"pickling failed with: {exc!r}"
            ) from exc

    def _chunk_groups(
        self, keys: list[K], shuffled: dict[K, list[V]]
    ) -> list[list[tuple[K, list[V]]]]:
        """Key-groups batched into roughly 4 chunks per worker.

        Chunking amortizes per-task pickling overhead while keeping
        enough tasks in flight to balance skewed groups.
        """
        target_chunks = self._worker_count() * 4
        chunk_size = max(1, -(-len(keys) // target_chunks))
        return [
            [(key, shuffled[key]) for key in keys[start : start + chunk_size]]
            for start in range(0, len(keys), chunk_size)
        ]

    def _split(self, records: Iterable[Any]) -> list[list[Any]]:
        partitions: list[list[Any]] = [[] for _ in range(self.partitions)]
        for index, record in enumerate(records):
            partitions[index % self.partitions].append(record)
        return partitions


class _MapTask:
    """Picklable callable binding a mapper/combiner for pool dispatch."""

    __slots__ = ("mapper", "combiner")

    def __init__(self, mapper: Mapper, combiner: Combiner | None) -> None:
        self.mapper = mapper
        self.combiner = combiner

    def __call__(self, partition: list[Any]):
        return _map_partition(self.mapper, self.combiner, partition)


class _ReduceTask:
    """Picklable callable binding a reducer for pool dispatch."""

    __slots__ = ("reducer",)

    def __init__(self, reducer: Reducer) -> None:
        self.reducer = reducer

    def __call__(self, groups: list[tuple[Any, list[Any]]]):
        return _reduce_chunk(self.reducer, groups)


@dataclass(slots=True)
class Pipeline:
    """A chain of jobs: each job's output feeds the next job's mapper."""

    jobs: list[MapReduceJob] = field(default_factory=list)

    def add(self, job: MapReduceJob) -> "Pipeline":
        self.jobs.append(job)
        return self

    def run(self, records: Iterable[Any]) -> list[Any]:
        current: Iterable[Any] = records
        output: list[Any] = list(current)
        for job in self.jobs:
            output = job.run(output)
        return output


def _wc_mapper(doc: str) -> list[tuple[str, int]]:
    return [(word.lower(), 1) for word in doc.split()]


def _wc_reducer(word: str, counts: list[int]) -> list[tuple[str, int]]:
    return [(word, sum(counts))]


def _wc_combiner(_word: str, counts: list[int]) -> list[int]:
    return [sum(counts)]


def word_count(
    documents: Iterable[str],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
) -> dict[str, int]:
    """The canonical demo job; doubles as an engine self-test."""
    job: MapReduceJob[str, int] = MapReduceJob(
        mapper=_wc_mapper,
        reducer=_wc_reducer,
        combiner=_wc_combiner,
        executor=executor,
        max_workers=max_workers,
    )
    return dict(job.run(documents))
