"""Local MapReduce engine and fusion jobs (the scale-out substrate)."""

from repro.mapreduce.engine import (
    EXECUTORS,
    JobStats,
    MapReduceJob,
    Pipeline,
    RetryPolicy,
    shutdown_pools,
    word_count,
)
from repro.mapreduce.jobs import mr_accu, mr_vote

__all__ = [
    "EXECUTORS",
    "JobStats",
    "MapReduceJob",
    "Pipeline",
    "RetryPolicy",
    "mr_accu",
    "mr_vote",
    "shutdown_pools",
    "word_count",
]
