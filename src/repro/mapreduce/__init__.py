"""Local MapReduce engine and fusion jobs (the scale-out substrate)."""

from repro.mapreduce.engine import JobStats, MapReduceJob, Pipeline, word_count
from repro.mapreduce.jobs import mr_accu, mr_vote

__all__ = [
    "JobStats",
    "MapReduceJob",
    "Pipeline",
    "mr_accu",
    "mr_vote",
    "word_count",
]
