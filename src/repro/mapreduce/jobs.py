"""Fusion expressed as MapReduce jobs.

Dong et al. [13] scale VOTE/ACCU up with a three-stage MapReduce
pattern; the same structure is reproduced here on the local engine:

* **MRVote** — one job: map each claim to its item, reduce by majority.
* **MRAccu** — iterative: each round is one job keyed by item that
  re-scores values under the current source accuracies, followed by a
  second job keyed by source that re-estimates accuracies from the
  round's probabilities.

Results agree with the in-memory implementations (tested), so the jobs
serve as the scale-out path rather than a separate algorithm.

Every mapper/reducer/combiner here is a module-level function (round
state such as the accuracy table is bound with ``functools.partial``),
which makes the job definitions picklable — the contract of the
engine's ``"process"`` executor.  Both entry points accept ``executor``
and ``max_workers`` and produce byte-identical results under either
executor (the engine's determinism guarantee).
"""

from __future__ import annotations

import functools
import math

from repro.faults import FaultPlan
from repro.fusion.base import Claim, ClaimSet, FusionResult, Item
from repro.mapreduce.engine import MapReduceJob, RetryPolicy


def _vote_mapper(claim: Claim):
    yield claim.item, (claim.value, claim.source_id)


def _vote_reducer(item: Item, votes: list[tuple[str, str]]):
    sources_per_value: dict[str, set[str]] = {}
    for value, source in votes:
        sources_per_value.setdefault(value, set()).add(source)
    scores = {
        value: float(len(sources))
        for value, sources in sources_per_value.items()
    }
    winner = min(scores, key=lambda value: (-scores[value], value))
    yield item, winner, scores


def mr_vote(
    claims: ClaimSet,
    *,
    partitions: int = 4,
    executor: str = "serial",
    max_workers: int | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> FusionResult:
    """VOTE as a single MapReduce job."""
    job: MapReduceJob = MapReduceJob(
        _vote_mapper,
        _vote_reducer,
        partitions=partitions,
        executor=executor,
        max_workers=max_workers,
        retry=retry,
        fault_plan=fault_plan,
    )
    result = FusionResult("mr-vote")
    for item, winner, scores in job.run(claims):
        result.truths[item] = {winner}
        total = sum(scores.values())
        for value, score in scores.items():
            result.belief[(item, value)] = score / total if total else 0.0
    result.iterations = 1
    return result


def _accu_score_mapper(claim: Claim):
    yield claim.item, claim


def _accu_score_reducer(
    acc_snapshot: dict[str, float],
    n_false_values: int,
    min_accuracy: float,
    max_accuracy: float,
    item: Item,
    item_claims: list[Claim],
):
    votes: dict[str, float] = {}
    for claim in item_claims:
        source_accuracy = min(
            max(acc_snapshot[claim.source_id], min_accuracy),
            max_accuracy,
        )
        votes[claim.value] = votes.get(claim.value, 0.0) + math.log(
            n_false_values * source_accuracy / (1.0 - source_accuracy)
        )
    top = max(votes.values())
    weights = {value: math.exp(vote - top) for value, vote in votes.items()}
    total = sum(weights.values())
    for claim in item_claims:
        yield item, claim.value, claim.source_id, (
            weights[claim.value] / total
        )


def _accuracy_mapper(record):
    return [(record[2], (record[3], 1))]


def _accuracy_reducer(source, pairs):
    return [
        (source, sum(p for p, _ in pairs) / sum(c for _, c in pairs))
    ]


def _accuracy_combiner(_source, pairs):
    # The accuracy job shuffles (sum, count) pairs, not averages: a
    # per-partition combiner must stay associative to be exact.
    return [(sum(p for p, _ in pairs), sum(c for _, c in pairs))]


def mr_accu(
    claims: ClaimSet,
    *,
    n_false_values: int = 10,
    initial_accuracy: float = 0.8,
    rounds: int = 10,
    partitions: int = 4,
    min_accuracy: float = 0.05,
    max_accuracy: float = 0.99,
    executor: str = "serial",
    max_workers: int | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> FusionResult:
    """ACCU as alternating MapReduce rounds.

    Round structure (per Dong et al.'s scale-up):

    1. job keyed by **item**: compute value probabilities under the
       current accuracy table (broadcast like a distributed cache —
       under the process executor the snapshot rides along inside each
       round's pickled reducer);
    2. job keyed by **source**: average the probabilities of each
       source's claims into its new accuracy.
    """
    claim_list = list(claims)
    accuracy = {source: initial_accuracy for source in claims.sources()}
    probabilities: dict[tuple[Item, str], float] = {}
    final_round = 0

    for final_round in range(1, rounds + 1):
        acc_snapshot = dict(accuracy)  # the broadcast side-input

        score_job: MapReduceJob = MapReduceJob(
            _accu_score_mapper,
            functools.partial(
                _accu_score_reducer,
                acc_snapshot,
                n_false_values,
                min_accuracy,
                max_accuracy,
            ),
            partitions=partitions,
            executor=executor,
            max_workers=max_workers,
            retry=retry,
            fault_plan=fault_plan,
        )
        scored = score_job.run(claim_list)

        probabilities = {}
        for item, value, _source, probability in scored:
            probabilities[(item, value)] = probability

        accuracy_job: MapReduceJob = MapReduceJob(
            _accuracy_mapper,
            _accuracy_reducer,
            combiner=_accuracy_combiner,
            partitions=partitions,
            executor=executor,
            max_workers=max_workers,
            retry=retry,
            fault_plan=fault_plan,
        )
        new_accuracy = {
            source: min(max(value, min_accuracy), max_accuracy)
            for source, value in accuracy_job.run(scored)
        }
        delta = max(
            abs(new_accuracy.get(source, accuracy[source]) - accuracy[source])
            for source in accuracy
        )
        accuracy.update(new_accuracy)
        if delta < 1e-4:
            break

    result = FusionResult("mr-accu")
    result.iterations = final_round
    result.source_quality = accuracy
    result.belief = probabilities
    for item in claims.items():
        values = claims.values_of(item)
        winner = min(
            values,
            key=lambda value: (-probabilities.get((item, value), 0.0), value),
        )
        result.truths[item] = {winner}
    return result
